"""Columnar (batch) physical operator implementations.

The row backend (:mod:`repro.execution.operators`) evaluates one Python
tuple at a time through per-row closures — a chain of Python calls per
row per expression node, which dominates local compute once benchmarks
push hundreds of thousands of TPC-H rows through scans, joins and
aggregates.  This module is the second execution backend: operators pass
:class:`ColumnBatch` objects (parallel columns instead of row tuples)
and expressions run as compiled batch kernels
(:mod:`repro.expr.kernels`), so the per-row work collapses into list
comprehensions and per-column tight loops.

Semantics are identical to the row backend by construction *and* by
test: same NULL three-valued logic, same operator output order (filters
preserve order, hash joins probe in the same sequence, aggregate groups
appear in first-seen order, sorts use the same stable key), so the two
backends produce row-identical results — locked down by the executor
equivalence suite and the kernel property tests.

Layout and conversion rules
---------------------------

* A :class:`ColumnBatch` carries ``columns`` (field names), ``data``
  (one read-only sequence per field, all of length ``nrows``) and
  ``nrows``.  Operators never mutate a column in place; derived batches
  share unchanged columns by reference (projection and column remapping
  are O(#columns), not O(rows)).
* Filters compile to selection kernels: a *selection vector* of passing
  row indices is refined conjunct by conjunct and applied once per
  column (:func:`repro.expr.kernels.compile_predicate_kernel`).
* Rows materialize **only at SHIP and final-result edges**: the public
  :meth:`BatchOperatorExecutor.run` returns a
  :class:`~repro.execution.operators.RowBatch` (what the fragment
  scheduler ships between sites and callers consume); everywhere below
  that boundary data stays columnar.  SHIP byte accounting uses
  :func:`column_bytes`, which measures the wire size straight from the
  columns without building a single tuple.
"""

from __future__ import annotations

import datetime
import time
from typing import Any, Sequence

from ..errors import ExecutionError
from ..expr import AggregateFunction, compile_kernel, compile_predicate_kernel
from ..geo import GeoDatabase, NetworkModel
from ..plan import (
    Filter,
    HashAggregate,
    HashJoin,
    NestedLoopJoin,
    PhysicalPlan,
    Project,
    Ship,
    Sort,
    TableScan,
    UnionAll,
)
from ..trace import current_recorder
from .metrics import ExecutionMetrics
from .operators import RowBatch
from .wire import ShipConfig, encode_ship

#: One column of values; scans yield tuples, computed columns are lists.
Column = Sequence[Any]


def column_bytes(data: Sequence[Column]) -> int:
    """Measured wire size of a column batch — the exact per-value rules
    of :func:`repro.execution.operators.actual_bytes`, summed column-wise
    so a SHIP can be billed without materializing row tuples."""
    total = 0
    for column in data:
        for value in column:
            if value is None:
                total += 1
            elif isinstance(value, bool):
                total += 1
            elif isinstance(value, (int, float)):
                total += 8
            elif isinstance(value, str):
                total += len(value)
            elif isinstance(value, datetime.datetime):
                total += 8
            elif isinstance(value, datetime.date):
                total += 4
            else:
                total += 8
    return total


class ColumnBatch:
    """One operator's output in columnar form (see module docstring)."""

    __slots__ = ("columns", "data", "nrows")

    def __init__(self, columns: list[str], data: list[Column], nrows: int) -> None:
        self.columns = columns
        self.data = data
        self.nrows = nrows

    @classmethod
    def from_rows(cls, columns: list[str], rows: Sequence[tuple]) -> "ColumnBatch":
        if rows:
            data: list[Column] = list(zip(*rows))
        else:
            data = [() for _ in columns]
        return cls(list(columns), data, len(rows))

    def to_rows(self) -> list[tuple]:
        """Transpose back to row tuples (SHIP / final-result edges only)."""
        if self.nrows == 0:
            return []
        return list(zip(*self.data))

    def gather(self, sel: Sequence[int]) -> "ColumnBatch":
        """Apply a selection vector, producing a dense batch."""
        return ColumnBatch(
            self.columns, [[c[i] for i in sel] for c in self.data], len(sel)
        )


class BatchOperatorExecutor:
    """Columnar evaluator for located physical plans.

    Drop-in replacement for :class:`~repro.execution.operators
    .OperatorExecutor`: same constructor, same metrics bookkeeping (one
    :class:`OperatorRecord` per operator with self wall-clock time), and
    :meth:`run` returns the same :class:`RowBatch` shape — so the
    engine and the fragment scheduler drive either backend unchanged.
    """

    def __init__(
        self,
        database: GeoDatabase,
        network: NetworkModel,
        metrics: ExecutionMetrics,
        ship: ShipConfig | None = None,
    ) -> None:
        self.database = database
        self.network = network
        self.metrics = metrics
        #: Wire format for SHIP edges (``None``/default = legacy
        #: monolithic uncompressed transfers).
        self.ship = ship or ShipConfig()
        self._child_seconds: list[float] = []

    # -- public API (row boundary) ---------------------------------------------

    def run(self, node: PhysicalPlan) -> RowBatch:
        """Evaluate ``node`` and materialize the result as rows (the
        final-result / fragment-output conversion boundary)."""
        batch = self.run_batch(node)
        return RowBatch(batch.columns, batch.to_rows())

    # -- columnar recursion ----------------------------------------------------

    def run_batch(self, node: PhysicalPlan) -> ColumnBatch:
        self.metrics.operators_executed += 1
        start = time.perf_counter()
        self._child_seconds.append(0.0)
        batch = self._dispatch(node)
        elapsed = time.perf_counter() - start
        child_seconds = self._child_seconds.pop()
        if self._child_seconds:
            self._child_seconds[-1] += elapsed
        self.metrics.record_operator(
            node.describe(), node.location, batch.nrows, elapsed - child_seconds
        )
        return batch

    def _dispatch(self, node: PhysicalPlan) -> ColumnBatch:
        if isinstance(node, TableScan):
            return self._scan(node)
        if isinstance(node, Filter):
            return self._filter(node)
        if isinstance(node, Project):
            return self._project(node)
        if isinstance(node, HashJoin):
            return self._hash_join(node)
        if isinstance(node, NestedLoopJoin):
            return self._nested_loop_join(node)
        if isinstance(node, HashAggregate):
            return self._aggregate(node)
        if isinstance(node, UnionAll):
            return self._union(node)
        if isinstance(node, Sort):
            return self._sort(node)
        if isinstance(node, Ship):
            return self._ship(node)
        raise ExecutionError(f"unknown physical operator {type(node).__name__}")

    # -- leaf ------------------------------------------------------------------

    def _scan(self, node: TableScan) -> ColumnBatch:
        # Columnar storage access: the database transposes each fragment
        # once and caches it, so a scan is O(#columns) reference sharing.
        data = self.database.columns(node.database, node.table)
        nrows = len(data[0]) if data else 0
        self.metrics.rows_scanned += nrows
        return ColumnBatch(list(node.field_names), list(data), nrows)

    # -- unary -----------------------------------------------------------------

    def _filter(self, node: Filter) -> ColumnBatch:
        assert node.child is not None and node.predicate is not None
        child = self.run_batch(node.child)
        refine = compile_predicate_kernel(node.predicate, child.columns)
        sel = refine(child.data, None, child.nrows)
        if len(sel) == child.nrows:
            return child  # nothing dropped; keep the columns shared
        return child.gather(sel)

    def _project(self, node: Project) -> ColumnBatch:
        assert node.child is not None
        child = self.run_batch(node.child)
        kernels = [compile_kernel(e, child.columns) for e in node.exprs]
        data = [k(child.data, None, child.nrows) for k in kernels]
        return ColumnBatch(list(node.names), data, child.nrows)

    def _sort(self, node: Sort) -> ColumnBatch:
        assert node.child is not None
        child = self.run_batch(node.child)
        index = {name: i for i, name in enumerate(child.columns)}
        order = list(range(child.nrows))

        # Sort by keys in reverse significance order (stable sort), with
        # the row backend's exact NULL placement.
        for name, descending in reversed(node.sort_keys):
            col = child.data[index[name]]
            order.sort(
                key=lambda i: (True, col[i]) if col[i] is not None else (False, 0),
                reverse=descending,
            )
        if node.limit is not None:
            order = order[: node.limit]
        return child.gather(order)

    def _ship(self, node: Ship) -> ColumnBatch:
        assert node.child is not None
        batch = self.run_batch(node.child)
        nbytes = column_bytes(batch.data)
        wire_bytes: int | None = None
        chunks: int | None = None
        if self.ship.active:
            # The SHIP boundary is where columns leave the site anyway —
            # encode for the wire and rebuild the batch from the
            # *decoded* rows, keeping the codec on the data path.
            wire = encode_ship(
                batch.columns, batch.to_rows(), logical_bytes=nbytes, config=self.ship
            )
            wire_bytes = wire.wire_bytes
            chunks = len(wire.chunks)
            batch = ColumnBatch.from_rows(batch.columns, wire.decode_rows())
        self.metrics.record_ship(
            self.network,
            node.source,
            node.target,
            batch.nrows,
            nbytes,
            wire_bytes=wire_bytes,
            chunks=1 if chunks is None else chunks,
        )
        recorder = current_recorder()
        if recorder is not None:
            recorder.record_local_ship(
                node,
                rows=batch.nrows,
                nbytes=nbytes,
                columns=batch.columns,
                seconds=self.network.transfer_time(
                    node.source,
                    node.target,
                    nbytes if wire_bytes is None else wire_bytes,
                ),
                wire_bytes=wire_bytes,
                chunks=chunks,
            )
        return batch

    # -- joins -----------------------------------------------------------------

    def _hash_join(self, node: HashJoin) -> ColumnBatch:
        assert node.left is not None and node.right is not None
        left = self.run_batch(node.left)
        right = self.run_batch(node.right)
        left_keys = [
            compile_kernel(k, left.columns)(left.data, None, left.nrows)
            for k in node.left_keys
        ]
        right_keys = [
            compile_kernel(k, right.columns)(right.data, None, right.nrows)
            for k in node.right_keys
        ]
        table: dict[Any, list[int]] = {}
        if len(left_keys) == 1:
            for i, v in enumerate(left_keys[0]):
                if v is None:
                    continue  # NULL never matches in an equi-join
                table.setdefault(v, []).append(i)
        else:
            for i, key in enumerate(zip(*left_keys)):
                if any(v is None for v in key):
                    continue
                table.setdefault(key, []).append(i)
        lidx: list[int] = []
        ridx: list[int] = []
        get = table.get
        if len(right_keys) == 1:
            for j, v in enumerate(right_keys[0]):
                if v is None:
                    continue
                matches = get(v)
                if matches is not None:
                    for i in matches:
                        lidx.append(i)
                        ridx.append(j)
        else:
            for j, key in enumerate(zip(*right_keys)):
                if any(v is None for v in key):
                    continue
                matches = get(key)
                if matches is not None:
                    for i in matches:
                        lidx.append(i)
                        ridx.append(j)
        columns = left.columns + right.columns
        data = [[c[i] for i in lidx] for c in left.data] + [
            [c[j] for j in ridx] for c in right.data
        ]
        batch = ColumnBatch(columns, data, len(lidx))
        if node.residual is not None:
            refine = compile_predicate_kernel(node.residual, columns)
            sel = refine(batch.data, None, batch.nrows)
            if len(sel) != batch.nrows:
                batch = batch.gather(sel)
        return self._remap(batch, node)

    def _nested_loop_join(self, node: NestedLoopJoin) -> ColumnBatch:
        assert node.left is not None and node.right is not None
        left = self.run_batch(node.left)
        right = self.run_batch(node.right)
        nl, nr = left.nrows, right.nrows
        lidx = [i for i in range(nl) for _ in range(nr)]
        ridx = list(range(nr)) * nl
        columns = left.columns + right.columns
        data = [[c[i] for i in lidx] for c in left.data] + [
            [c[j] for j in ridx] for c in right.data
        ]
        batch = ColumnBatch(columns, data, len(lidx))
        if node.condition is not None:
            refine = compile_predicate_kernel(node.condition, columns)
            sel = refine(batch.data, None, batch.nrows)
            if len(sel) != batch.nrows:
                batch = batch.gather(sel)
        return self._remap(batch, node)

    def _remap(self, batch: ColumnBatch, node: PhysicalPlan) -> ColumnBatch:
        """Reorder columns to the node's declared field order — O(#cols)
        reference shuffling, no row materialization."""
        wanted = list(node.field_names)
        if wanted == batch.columns:
            return batch
        index = {name: i for i, name in enumerate(batch.columns)}
        data = [batch.data[index[name]] for name in wanted]
        return ColumnBatch(wanted, data, batch.nrows)

    # -- set and aggregate -------------------------------------------------------

    def _union(self, node: UnionAll) -> ColumnBatch:
        columns = list(node.field_names)
        data: list[list] = [[] for _ in columns]
        nrows = 0
        for child_node in node.inputs:
            child = self.run_batch(child_node)
            if child.columns == columns:
                ordered = child.data
            else:
                index = {name: i for i, name in enumerate(child.columns)}
                ordered = [child.data[index[name]] for name in columns]
            for out, col in zip(data, ordered):
                out.extend(col)
            nrows += child.nrows
        return ColumnBatch(columns, data, nrows)

    def _aggregate(self, node: HashAggregate) -> ColumnBatch:
        assert node.child is not None
        child = self.run_batch(node.child)
        cols, n = child.data, child.nrows
        key_cols = [
            compile_kernel(k, child.columns)(cols, None, n) for k in node.group_keys
        ]
        arg_cols: list[Column | None] = [
            None
            if agg.argument is None
            else compile_kernel(agg.argument, child.columns)(cols, None, n)
            for agg in node.aggregates
        ]

        # Pass 1: assign each row a dense group index (first-seen order,
        # matching the row backend's dict insertion order).
        keys: list[tuple] = []
        gidx: list[int] = []
        if not key_cols:
            keys = [()]  # a global aggregate always yields one row
            gidx = [0] * n
        elif len(key_cols) == 1:
            group_of: dict[Any, int] = {}
            for v in key_cols[0]:
                g = group_of.get(v)
                if g is None:
                    g = len(keys)
                    group_of[v] = g
                    keys.append((v,))
                gidx.append(g)
        else:
            group_of = {}
            for key in zip(*key_cols):
                g = group_of.get(key)
                if g is None:
                    g = len(keys)
                    group_of[key] = g
                    keys.append(key)
                gidx.append(g)
        ngroups = len(keys)

        # Pass 2: one tight accumulation loop per aggregate (NULLs
        # skipped, SQL-style — identical to the row accumulators).
        agg_data: list[list] = []
        for agg, argcol in zip(node.aggregates, arg_cols):
            func = agg.func
            if func == AggregateFunction.COUNT:
                counts = [0] * ngroups
                if argcol is None:
                    for g in gidx:
                        counts[g] += 1
                else:
                    for g, v in zip(gidx, argcol):
                        if v is not None:
                            counts[g] += 1
                agg_data.append(counts)
            elif func in (AggregateFunction.SUM, AggregateFunction.AVG):
                totals: list[Any] = [0] * ngroups
                counts = [0] * ngroups
                assert argcol is not None
                for g, v in zip(gidx, argcol):
                    if v is not None:
                        totals[g] += v
                        counts[g] += 1
                if func == AggregateFunction.SUM:
                    agg_data.append(
                        [t if c else None for t, c in zip(totals, counts)]
                    )
                else:
                    agg_data.append(
                        [t / c if c else None for t, c in zip(totals, counts)]
                    )
            else:  # MIN / MAX
                extremes: list[Any] = [None] * ngroups
                assert argcol is not None
                if func == AggregateFunction.MIN:
                    for g, v in zip(gidx, argcol):
                        if v is not None:
                            e = extremes[g]
                            if e is None or v < e:
                                extremes[g] = v
                else:
                    for g, v in zip(gidx, argcol):
                        if v is not None:
                            e = extremes[g]
                            if e is None or v > e:
                                extremes[g] = v
                agg_data.append(extremes)

        nkeys = len(node.group_keys)
        key_data: list[list] = [[k[j] for k in keys] for j in range(nkeys)]
        return ColumnBatch(
            list(node.field_names), key_data + agg_data, ngroups
        )
