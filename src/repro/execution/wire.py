"""Compressed columnar wire format for SHIP transfers.

A SHIP edge logically moves a row batch, but what crosses the simulated
WAN is a :class:`ShipTransfer`: the batch split into fixed-size row
chunks, each chunk encoded column-wise with the cheapest of three
per-column encodings (``plain``, ``dict``, ``rle``).  Billed
``β·bytes`` then reflect the *wire* size while compliance accounting
keeps the *logical* size — both are recorded, never conflated.

The size model mirrors :func:`repro.execution.operators.actual_bytes`
per value (``None``/``bool`` = 1, numbers/timestamps = 8, dates = 4,
strings = ``len``), plus encoding overhead: a dictionary column pays
one copy of each distinct value and a 1/2/4-byte code per row
(cardinality ≤ 256 / ≤ 65536 / beyond); a run-length column pays each
run's value once plus a fixed 4-byte run length.

Round-trips are exact by construction: dictionary and run grouping key
values by ``(type, value)`` so ``1``/``1.0``/``True`` never collapse,
floats key by ``repr`` so ``-0.0`` and ``0.0`` stay distinct, and any
column holding a value that is not self-equal (NaN) or not hashable
falls back to ``plain``, which passes the original objects through by
reference.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

ENCODINGS = ("plain", "dict", "rle")
COMPRESSION_MODES = ("none", "auto")

#: Default chunk granularity for the CLI's streaming mode.
DEFAULT_CHUNK_ROWS = 256

#: Bytes billed per dictionary code at a given cardinality.
_DICT_CODE_WIDTHS = ((256, 1), (65536, 2))
#: Bytes billed per run-length counter.
_RLE_RUN_OVERHEAD = 4


class WireFormatError(ValueError):
    """A malformed wire configuration or encoded column."""


@dataclass(frozen=True)
class ShipConfig:
    """How SHIP edges move batches over the simulated WAN.

    The default — no chunking, no compression — is byte-for-byte the
    legacy monolithic transfer, so existing callers and recorded traces
    are unaffected unless a caller opts in.
    """

    #: Rows per streamed chunk; ``None`` keeps monolithic transfers.
    chunk_rows: int | None = None
    #: ``"none"`` ships plain columns; ``"auto"`` picks the cheapest
    #: of plain/dict/rle per column per chunk.
    compression: str = "none"

    def __post_init__(self) -> None:
        if self.chunk_rows is not None and self.chunk_rows <= 0:
            raise WireFormatError(
                f"chunk_rows must be a positive integer, got {self.chunk_rows!r}"
            )
        if self.compression not in COMPRESSION_MODES:
            raise WireFormatError(
                f"compression must be one of {COMPRESSION_MODES}, "
                f"got {self.compression!r}"
            )

    @property
    def streaming(self) -> bool:
        """Is chunked (pipelined) transfer enabled?"""
        return self.chunk_rows is not None

    @property
    def active(self) -> bool:
        """Does this config change anything over the legacy path?"""
        return self.streaming or self.compression != "none"


def _value_nbytes(value: Any) -> int:
    """Measured wire size of one value (same rules as ``actual_bytes``;
    ``datetime`` before ``date``, ``bool`` before ``int``)."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, datetime.datetime):
        return 8
    if isinstance(value, datetime.date):
        return 4
    return 8


def _group_key(value: Any) -> tuple:
    """Type-strict grouping key: ``1``, ``1.0`` and ``True`` stay
    distinct, and floats key by ``repr`` so ``-0.0 != 0.0``."""
    if isinstance(value, float):
        return (float, repr(value))
    return (value.__class__, value)


def _dict_code_width(cardinality: int) -> int:
    for bound, width in _DICT_CODE_WIDTHS:
        if cardinality <= bound:
            return width
    return 4


@dataclass(frozen=True)
class EncodedColumn:
    """One column of one chunk in its wire encoding.

    ``values``/``codes`` hold, per encoding:

    - ``plain`` — every value in row order; ``codes`` is empty.
    - ``dict``  — the distinct values in first-occurrence order;
      ``codes`` is one dictionary index per row.
    - ``rle``   — one value per run; ``codes`` is the run lengths.
    """

    encoding: str
    values: tuple
    codes: tuple
    nbytes: int

    def decode(self) -> list:
        """Reconstruct the column's values in row order."""
        if self.encoding == "plain":
            return list(self.values)
        if self.encoding == "dict":
            values = self.values
            return [values[code] for code in self.codes]
        if self.encoding == "rle":
            out: list = []
            for value, count in zip(self.values, self.codes):
                out.extend([value] * count)
            return out
        raise WireFormatError(f"unknown column encoding {self.encoding!r}")


def encode_column(values: Sequence[Any], compression: str = "none") -> EncodedColumn:
    """Encode one column, picking the cheapest eligible encoding.

    ``compression="none"`` always returns ``plain``.  ``"auto"``
    compares exact plain/dict/rle wire sizes and keeps the smallest,
    preferring ``plain`` (then ``dict``) on ties so fault-free wire
    bytes never exceed the uncompressed size.
    """
    column = tuple(values)
    plain_nbytes = sum(_value_nbytes(v) for v in column)
    plain = EncodedColumn("plain", column, (), plain_nbytes)
    if compression == "none" or not column:
        return plain
    if compression != "auto":
        raise WireFormatError(
            f"compression must be one of {COMPRESSION_MODES}, got {compression!r}"
        )
    try:
        keys = [_group_key(v) for v in column]
        for value in column:
            if value != value:  # NaN-like: only reference-passing is exact
                return plain
        distinct: dict[tuple, Any] = {}
        for key, value in zip(keys, column):
            if key not in distinct:
                distinct[key] = value
    except TypeError:  # unhashable value somewhere in the column
        return plain
    dict_values = tuple(distinct.values())
    code_of = {key: i for i, key in enumerate(distinct)}
    width = _dict_code_width(len(dict_values))
    dict_nbytes = sum(_value_nbytes(v) for v in dict_values) + len(column) * width

    run_values: list = []
    run_counts: list[int] = []
    previous: tuple | None = None
    for key, value in zip(keys, column):
        if run_counts and key == previous:
            run_counts[-1] += 1
        else:
            run_values.append(value)
            run_counts.append(1)
            previous = key
    rle_nbytes = sum(_value_nbytes(v) for v in run_values) + _RLE_RUN_OVERHEAD * len(
        run_values
    )

    best = plain
    if dict_nbytes < best.nbytes:
        best = EncodedColumn("dict", dict_values, tuple(code_of[k] for k in keys), dict_nbytes)
    if rle_nbytes < best.nbytes:
        best = EncodedColumn("rle", tuple(run_values), tuple(run_counts), rle_nbytes)
    return best


@dataclass(frozen=True)
class WireChunk:
    """One fixed-size slice of a transfer, encoded column-wise."""

    index: int
    rows: int
    columns: tuple[EncodedColumn, ...]

    @property
    def nbytes(self) -> int:
        """Wire size of the chunk — what β multiplies on this send."""
        return sum(column.nbytes for column in self.columns)

    def decode_rows(self) -> list[tuple]:
        """Reconstruct the chunk's rows in order."""
        if not self.columns:
            return [() for _ in range(self.rows)]
        decoded = [column.decode() for column in self.columns]
        return [tuple(row) for row in zip(*decoded)]


@dataclass(frozen=True)
class ShipTransfer:
    """A full logical SHIP payload in wire form.

    ``logical_bytes`` is the uncompressed batch size (what compliance
    accounting and sequential/parallel byte-equivalence compare);
    :attr:`wire_bytes` is what actually crosses the link.
    """

    columns: tuple[str, ...]
    chunks: tuple[WireChunk, ...]
    rows: int
    logical_bytes: int

    @property
    def wire_bytes(self) -> int:
        return sum(chunk.nbytes for chunk in self.chunks)

    @property
    def chunk_sizes(self) -> tuple[int, ...]:
        return tuple(chunk.nbytes for chunk in self.chunks)

    def decode_rows(self) -> list[tuple]:
        """Reconstruct the original rows, chunk by chunk, in order."""
        rows: list[tuple] = []
        for chunk in self.chunks:
            rows.extend(chunk.decode_rows())
        return rows


def encode_ship(
    columns: Sequence[str],
    rows: Iterable[tuple],
    logical_bytes: int | None = None,
    config: ShipConfig | None = None,
) -> ShipTransfer:
    """Encode a row batch for the wire under ``config``.

    Without chunking the whole batch is one chunk (an empty batch still
    produces one empty chunk so the link's α latency is billed exactly
    as the monolithic path bills it).  ``logical_bytes`` may be passed
    from a cached :attr:`RowBatch.nbytes` to avoid re-measuring.
    """
    config = config or ShipConfig()
    row_list = rows if isinstance(rows, list) else list(rows)
    if logical_bytes is None:
        logical_bytes = sum(_value_nbytes(v) for row in row_list for v in row)
    size = config.chunk_rows
    if size is None:
        slices = [row_list]
    else:
        slices = [row_list[i : i + size] for i in range(0, len(row_list), size)] or [[]]
    chunks = []
    for index, part in enumerate(slices):
        if part:
            encoded = tuple(
                encode_column(column, config.compression) for column in zip(*part)
            )
        else:
            encoded = tuple(encode_column((), config.compression) for _ in columns)
        chunks.append(WireChunk(index=index, rows=len(part), columns=encoded))
    return ShipTransfer(
        columns=tuple(columns),
        chunks=tuple(chunks),
        rows=len(row_list),
        logical_bytes=logical_bytes,
    )
