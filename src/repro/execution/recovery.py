"""Retry and compliance-preserving failover for faulted WAN execution.

Two recovery mechanisms layer on top of the fault model
(:mod:`repro.execution.faults`):

* **Per-transfer retry** — :class:`RetryPolicy` gives every transfer a
  bounded number of attempts with exponential backoff and deterministic
  jitter, all on the *simulated* clock: backoff waits are charged to the
  consumer fragment's start time, so the reported makespan includes
  every retry delay.  Jitter is derived from a stable hash of the
  transfer's identity (never from wall-clock randomness), so a faulted
  run is reproducible regardless of thread scheduling.

* **Compliance-preserving failover** — when a fragment's site has
  crashed (or its inputs cannot reach it), :class:`FailoverPlanner`
  re-places the fragment at a backup site.  The candidate set is the
  intersection of the annotated execution traits ℰ over the fragment's
  operators (the site selector attaches them during materialization, so
  this re-uses exactly the legality information the optimizer's memo
  derived), ranked by estimated re-shipping cost under the same
  ``α + β·bytes`` model the site-selection DP minimized.  Every
  candidate placement is re-validated with
  :func:`repro.optimizer.validator.check_recovery_placement` before it
  is accepted — recovery never trades compliance for availability.
  Fragments that scan *non-replicated* tables at the dead site
  (ℰ = {dead site}) and result-delivery fragments (the user chose the
  destination) are pinned: with no legal candidate the query degrades
  to a typed partial-failure result instead of either crashing or
  shipping data somewhere the dataflow policies forbid.

* **Replica failover** — when the catalog declares replicas
  (:meth:`repro.catalog.Catalog.add_replica`), a scan's ℰ includes every
  *compliant* replica site, so a scan-bearing fragment whose site died
  (or whose links opened a circuit breaker) fails over to an alternate
  replica — the planner's first resort, taken before re-placement and
  long before a ``PartialFailure``.  Such failovers carry
  ``kind == "replica"`` and are still re-validated like any other.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ExecutionError
from ..geo import NetworkModel
from ..plan import PhysicalPlan, Ship, TableScan
from ..validation import validate_non_negative_int, validate_timeout
from .fragments import Fragment, FragmentDAG, fragment_plan
from .faults import stable_fraction


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/timeout knobs, all in simulated seconds."""

    #: Failed attempts a transfer may retry (0 disables retries).
    max_retries: int = 3
    #: Backoff before the first retry; grows by ``backoff_multiplier``.
    backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    #: Jitter fraction: each wait is scaled by ``1 + jitter·u`` with a
    #: deterministic ``u ∈ [0, 1)`` derived from the transfer identity.
    jitter: float = 0.25
    #: Cap on one fragment's input-delivery span (``None`` = no cap).
    fragment_timeout: float | None = None
    #: Failure-detection delay charged once per failover.
    detection_seconds: float = 0.05

    def __post_init__(self) -> None:
        validate_non_negative_int(self.max_retries, "max_retries")
        if self.backoff_seconds < 0 or self.backoff_multiplier < 1.0:
            raise ExecutionError("backoff must be >= 0 with multiplier >= 1")
        validate_timeout(self.fragment_timeout, "fragment_timeout")

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def backoff(self, failed_attempts: int, *key: object) -> float:
        """Simulated wait before the next attempt, after ``failed_attempts``
        (>= 1) failures of the transfer identified by ``key``."""
        base = self.backoff_seconds * self.backoff_multiplier ** (failed_attempts - 1)
        return base * (1.0 + self.jitter * stable_fraction("retry", failed_attempts, *key))


# -- chunk-granular delivery state ---------------------------------------------


@dataclass(frozen=True)
class ChunkAck:
    """One delivered chunk's receipt at its target site."""

    at_seconds: float  # simulated arrival instant
    seconds: float  # billed transfer time of the successful send
    wire_bytes: int  # compressed bytes that crossed the link


class ChunkLedger:
    """Delivered-chunk acknowledgements, keyed ``(producer, target site)``.

    Streaming retry and failover consult the ledger so a chunk that
    already reached the consumer's site is *never* re-sent or re-billed:
    a transient fault resumes from the first unacknowledged chunk, and a
    producer-side failover re-ships only the pending suffix from the new
    source (the delivered prefix is already at the target).  A consumer
    failover changes the target site — a fresh key — so the full
    transfer restarts, exactly as physical reality would demand.
    """

    def __init__(self) -> None:
        self._acked: dict[tuple[int, str], dict[int, ChunkAck]] = {}
        self._attempts: dict[tuple[int, str], int] = {}
        self._waits: dict[tuple[int, str], float] = {}

    def acked(self, producer: int, target: str) -> dict[int, ChunkAck]:
        """Acks recorded so far for ``producer``'s transfer to ``target``."""
        return self._acked.get((producer, target), {})

    def ack(
        self,
        producer: int,
        target: str,
        chunk: int,
        at_seconds: float,
        seconds: float,
        wire_bytes: int,
    ) -> None:
        self._acked.setdefault((producer, target), {})[chunk] = ChunkAck(
            at_seconds=at_seconds, seconds=seconds, wire_bytes=wire_bytes
        )

    def pending(self, producer: int, target: str, total_chunks: int) -> list[int]:
        """Chunk indexes still undelivered, in send order.  Sends are
        serialized per link, so this is always a suffix ``k..total-1``
        starting at the first unacknowledged chunk."""
        done = self._acked.get((producer, target), {})
        return [k for k in range(total_chunks) if k not in done]

    def note_attempt(self, producer: int, target: str) -> None:
        """Count one chunk-send attempt (any outcome) toward the
        transfer's lifetime total."""
        key = (producer, target)
        self._attempts[key] = self._attempts.get(key, 0) + 1

    def attempts(self, producer: int, target: str) -> int:
        return self._attempts.get((producer, target), 0)

    def note_wait(self, producer: int, target: str, seconds: float) -> None:
        """Accumulate simulated backoff waited before chunk retries."""
        key = (producer, target)
        self._waits[key] = self._waits.get(key, 0.0) + seconds

    def wait_seconds(self, producer: int, target: str) -> float:
        return self._waits.get((producer, target), 0.0)


# -- fragment relocation -------------------------------------------------------


def fragment_body_ids(fragment: Fragment) -> tuple[set[int], set[int]]:
    """Ids of the nodes in a fragment's body, and of its cut Ship leaves
    (which are part of the body but keep their producer-side source)."""
    cut = {id(entry.ship) for entry in fragment.inputs}
    body: set[int] = set()
    stack: list[PhysicalPlan] = [fragment.root]
    while stack:
        node = stack.pop()
        body.add(id(node))
        if id(node) in cut:
            continue
        stack.extend(node.children())
    return body, cut


def relocate_fragment(
    plan: PhysicalPlan, fragment: Fragment, new_site: str
) -> PhysicalPlan:
    """A copy of ``plan`` with ``fragment`` re-placed at ``new_site``.

    Body operators move to ``new_site``; the fragment's cut input Ships
    now deliver to ``new_site`` (their sources — the producers' sites —
    are untouched); the fragment's output Ship, which lives in the
    consumer's body, now originates *from* ``new_site``.  The original
    plan objects are never mutated, so an in-flight execution of the old
    placement stays consistent and the candidate can be discarded freely
    if validation rejects it.
    """
    body, cut = fragment_body_ids(fragment)
    output_id = id(fragment.output) if fragment.output is not None else None

    def rebuild(node: PhysicalPlan) -> PhysicalPlan:
        overrides: dict[str, object] = {}
        for attr in ("child", "left", "right"):
            value = getattr(node, attr, None)
            if isinstance(value, PhysicalPlan):
                overrides[attr] = rebuild(value)
        inputs = getattr(node, "inputs", None)
        if isinstance(inputs, tuple):
            overrides["inputs"] = tuple(rebuild(v) for v in inputs)
        if id(node) == output_id:
            overrides["source"] = new_site
        elif id(node) in cut:
            overrides["location"] = new_site
            overrides["target"] = new_site
        elif id(node) in body:
            overrides["location"] = new_site
        return replace(node, **overrides)

    return rebuild(plan)


# -- failover planning ---------------------------------------------------------


def failover_candidates(
    fragment: Fragment,
    unavailable: frozenset[str],
    all_locations: frozenset[str] | None = None,
) -> tuple[str, ...]:
    """Legal backup sites for ``fragment``: ⋂ℰ over its body operators.

    Table scans carry ℰ = {home site} ∪ {compliant replica sites}, so
    fragments reading a *non-replicated* table at a crashed site are
    pinned automatically (empty result) while replicated ones fail over
    to an alternate compliant replica — the planner's first resort,
    tried before any re-placement and long before a partial failure.
    A fragment
    whose root is a Ship is a result-delivery relay — the destination
    was chosen by the caller, never moved.  When trait annotations are
    absent (hand-built or baseline plans) the fallback is
    ``all_locations`` unless the body scans a table, in which case the
    fragment is pinned to the scan's home.
    """
    if isinstance(fragment.root, Ship):
        return ()
    _body, cut = fragment_body_ids(fragment)
    trait: frozenset[str] | None = None
    untraited_scan = False
    stack: list[PhysicalPlan] = [fragment.root]
    while stack:
        node = stack.pop()
        if id(node) in cut or isinstance(node, Ship):
            continue
        if node.execution_trait is not None:
            trait = (
                node.execution_trait
                if trait is None
                else trait & node.execution_trait
            )
        elif isinstance(node, TableScan):
            untraited_scan = True
        stack.extend(node.children())
    if trait is None:
        if untraited_scan or all_locations is None:
            return ()
        trait = all_locations
    elif untraited_scan:
        return ()
    legal = trait - unavailable - {fragment.location}
    return tuple(sorted(legal))


def fragment_scans(fragment: Fragment) -> bool:
    """Does the fragment's body (excluding cut input Ships) scan a base
    table?  Moving such a fragment means reading a *replica* — only
    possible when the catalog declares one and the policies admit it
    (replica sites are in the scan's ℰ, so the candidate set encodes
    legality already); without replicas these fragments are pinned."""
    _body, cut = fragment_body_ids(fragment)
    stack: list[PhysicalPlan] = [fragment.root]
    while stack:
        node = stack.pop()
        if id(node) in cut:
            continue
        if isinstance(node, TableScan):
            return True
        stack.extend(node.children())
    return False


@dataclass
class Failover:
    """A validated re-placement of one failed fragment."""

    index: int
    from_site: str
    to_site: str
    reason: str
    plan: PhysicalPlan  # the whole re-placed plan
    dag: FragmentDAG  # re-fragmented (same shape: cuts are unchanged)
    #: Whether a policy evaluator re-validated the placement (False only
    #: when the scheduler runs without a compliance guard).
    validated: bool = False
    #: ``"replica"`` when the fragment scans a table (the new site reads
    #: a compliant replica); ``"replacement"`` for scan-free fragments.
    kind: str = "replacement"
    #: Worst-case staleness the fragment's scans would read at the new
    #: site at the decision instant (0.0 = all primaries / no tracker).
    staleness: float = 0.0


class FailoverPlanner:
    """Chooses and validates backup placements for failed fragments.

    ``breakers`` (anything with ``allow(source, target, when) -> bool``,
    e.g. :class:`repro.server.breaker.BreakerRegistry`) steers candidate
    ranking away from sites whose input/output links are currently
    refused by an open circuit breaker — such a placement would only
    fast-fail again."""

    def __init__(
        self,
        network: NetworkModel,
        evaluator=None,  # PolicyEvaluator | None
        all_locations: frozenset[str] | None = None,
        breakers=None,  # LinkGovernor | None
        freshness=None,  # FreshnessPolicy | None
    ) -> None:
        self.network = network
        self.evaluator = evaluator
        self.all_locations = all_locations
        self.breakers = breakers
        self.freshness = freshness

    def _open_links(
        self, dag: FragmentDAG, fragment: Fragment, site: str, at: float
    ) -> int:
        """How many of the fragment's links would land on a link the
        breaker registry currently refuses, were it placed at ``site``."""
        if self.breakers is None:
            return 0
        open_count = 0
        for entry in fragment.inputs:
            producer = dag.fragments[entry.producer]
            if producer.location != site and not self.breakers.allow(
                producer.location, site, at
            ):
                open_count += 1
        if fragment.output is not None and fragment.consumer is not None:
            consumer = dag.fragments[fragment.consumer]
            if consumer.location != site and not self.breakers.allow(
                site, consumer.location, at
            ):
                open_count += 1
        return open_count

    def _relocation_cost(self, dag: FragmentDAG, fragment: Fragment, site: str) -> float:
        """Estimated extra shipping after moving ``fragment`` to ``site``
        — the same ``α + β·bytes`` objective the site-selection DP
        minimized, re-evaluated for the new edges."""
        cost = 0.0
        for entry in fragment.inputs:
            producer = dag.fragments[entry.producer]
            cost += self.network.transfer_time(
                producer.location, site, entry.ship.estimated_bytes
            )
        if fragment.output is not None and fragment.consumer is not None:
            consumer = dag.fragments[fragment.consumer]
            cost += self.network.transfer_time(
                site, consumer.location, fragment.output.estimated_bytes
            )
        return cost

    def plan_failover(
        self,
        plan: PhysicalPlan,
        dag: FragmentDAG,
        index: int,
        unavailable: frozenset[str],
        reason: str,
        at: float = 0.0,
        staleness_ceiling: float | None = None,
    ) -> Failover | None:
        """The cheapest compliant re-placement of fragment ``index``, or
        ``None`` when every candidate is illegal, unreachable, or fails
        re-validation (→ the query degrades to a partial failure).

        ``at`` is the simulated instant the failure was detected; with a
        breaker registry installed, candidates whose links are refused at
        that instant sort last (but remain candidates — an open link may
        still be the only compliant option).

        With a freshness policy installed, each candidate replica's
        staleness is re-derived *at this instant*: a candidate violating
        the bound is dropped outright (never chosen — a demotion must
        not land on a copy as stale as the one it left), equally-priced
        survivors rank freshest-first (then lexicographic site), and
        ``staleness_ceiling`` (a soft prefer-fresh demotion's current
        staleness) additionally requires a strictly fresher copy."""
        fragment = dag.fragments[index]
        candidates = failover_candidates(fragment, unavailable, self.all_locations)
        kind = "replica" if fragment_scans(fragment) else "replacement"
        staleness_of: dict[str, float] = {}
        if self.freshness is not None and kind == "replica":
            from ..catalog import FRESHNESS_EPS

            for site in candidates:
                staleness_of[site] = self.freshness.site_staleness(
                    fragment, site, at
                )
            if self.freshness.enforcing:
                candidates = tuple(
                    site
                    for site in candidates
                    if self.freshness.within_bound(staleness_of[site])
                )
            if staleness_ceiling is not None:
                candidates = tuple(
                    site
                    for site in candidates
                    if staleness_of[site] + FRESHNESS_EPS < staleness_ceiling
                )
        ranked = sorted(
            candidates,
            key=lambda site: (
                self._open_links(dag, fragment, site, at),
                self._relocation_cost(dag, fragment, site),
                staleness_of.get(site, 0.0),
                site,
            ),
        )
        for site in ranked:
            candidate_plan = relocate_fragment(plan, fragment, site)
            validated = False
            if self.evaluator is not None:
                from ..optimizer.validator import check_recovery_placement

                if check_recovery_placement(candidate_plan, self.evaluator):
                    continue  # never recover into a non-compliant plan
                validated = True
            new_dag = fragment_plan(candidate_plan)
            if len(new_dag.fragments) != len(dag.fragments):  # pragma: no cover
                # Relocation only changes locations, never the cut
                # topology; a shape change would invalidate the results
                # computed so far, so refuse this candidate.
                continue
            return Failover(
                index=index,
                from_site=fragment.location,
                to_site=site,
                reason=reason,
                plan=candidate_plan,
                dag=new_dag,
                validated=validated,
                kind=kind,
                staleness=staleness_of.get(site, 0.0),
            )
        return None
