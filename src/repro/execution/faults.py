"""Deterministic fault injection for the execution layer.

A :class:`FaultPlan` is a declarative schedule of WAN failures, each
with an onset on the *simulated* clock the fragment scheduler advances
(:mod:`repro.execution.scheduler`).  Because the clock is simulated and
every fault is specified ahead of time, a faulted run is exactly
reproducible: the same plan, data, and fault plan always produce the
same retries, failovers, and makespan — the property the chaos
equivalence suite relies on.

Four fault kinds:

* :class:`SiteCrash` — a site fails permanently at ``at`` seconds.
  Fragments placed there fail with
  :class:`~repro.errors.SiteUnavailableError` and are either re-placed
  within their execution traits ℰ (compliance-preserving failover, see
  :mod:`repro.execution.recovery`) or degrade the query to a typed
  partial-failure result.
* :class:`LinkDown` — a directed link drops at ``at`` (optionally
  recovering after ``duration``); transfer attempts in the outage raise
  :class:`~repro.errors.TransferError` (non-transient when permanent).
* :class:`SlowLink` — a directed link is degraded by ``factor`` from
  ``at`` (optionally for ``duration``); transfers succeed but take
  ``factor ×`` longer, inflating the makespan without any failure.
* :class:`FlakyLink` — a directed link fails *transiently* during
  ``[at, at + duration)``; attempts inside the window raise a transient
  :class:`~repro.errors.TransferError`, and retry backoff that pushes
  the next attempt past the window succeeds, leaving results
  row-identical to the fault-free run.

``parse_fault_spec`` reads the compact CLI syntax (``--faults``), and
:meth:`FaultPlan.random` draws a seeded random plan for chaos suites.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..errors import ExecutionError


@dataclass(frozen=True)
class SiteCrash:
    """Permanent failure of one site at ``at`` seconds (simulated)."""

    site: str
    at: float = 0.0

    def __str__(self) -> str:
        return f"crash:{self.site}@{self.at:g}"


@dataclass(frozen=True)
class LinkDown:
    """Directed link outage from ``at``; permanent when ``duration`` is
    ``None``, else the link recovers at ``at + duration``."""

    source: str
    target: str
    at: float = 0.0
    duration: float | None = None

    def active(self, when: float) -> bool:
        if when < self.at:
            return False
        return self.duration is None or when < self.at + self.duration

    def __str__(self) -> str:
        window = "" if self.duration is None else f"+{self.duration:g}"
        return f"drop:{self.source}->{self.target}@{self.at:g}{window}"


@dataclass(frozen=True)
class SlowLink:
    """Directed link degraded by ``factor`` from ``at`` (optionally for
    ``duration`` seconds); transfer times multiply, nothing fails."""

    source: str
    target: str
    factor: float
    at: float = 0.0
    duration: float | None = None

    def active(self, when: float) -> bool:
        if when < self.at:
            return False
        return self.duration is None or when < self.at + self.duration

    def __str__(self) -> str:
        window = "" if self.duration is None else f"+{self.duration:g}"
        return f"slow:{self.source}->{self.target}@{self.at:g}{window}x{self.factor:g}"


@dataclass(frozen=True)
class FlakyLink:
    """Directed link failing *transiently* during ``[at, at+duration)``.

    Attempts inside the window fail with a transient
    :class:`~repro.errors.TransferError`; retry backoff that lands past
    the window succeeds, so retried queries stay row-identical."""

    source: str
    target: str
    at: float = 0.0
    duration: float = 0.1

    def active(self, when: float) -> bool:
        return self.at <= when < self.at + self.duration

    def __str__(self) -> str:
        return f"flaky:{self.source}->{self.target}@{self.at:g}+{self.duration:g}"


FaultEvent = SiteCrash | LinkDown | SlowLink | FlakyLink


@dataclass
class FaultPlan:
    """A deterministic schedule of WAN faults on the simulated clock."""

    events: list[FaultEvent] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.events)

    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    # -- queries (all on the simulated clock) ----------------------------------

    def site_down(self, site: str, when: float) -> bool:
        """Is ``site`` crashed at simulated time ``when``?  Crashes are
        permanent: true for every instant at or after the onset."""
        return any(
            isinstance(e, SiteCrash) and e.site == site and when >= e.at
            for e in self.events
        )

    def crashed_sites(self, when: float) -> frozenset[str]:
        """All sites crashed at or before ``when``."""
        return frozenset(
            e.site
            for e in self.events
            if isinstance(e, SiteCrash) and when >= e.at
        )

    def link_down(self, source: str, target: str, when: float) -> LinkDown | None:
        """The active :class:`LinkDown` for this directed pair, if any."""
        for e in self.events:
            if (
                isinstance(e, LinkDown)
                and e.source == source
                and e.target == target
                and e.active(when)
            ):
                return e
        return None

    def link_flaky(self, source: str, target: str, when: float) -> FlakyLink | None:
        """The active :class:`FlakyLink` window for this pair, if any."""
        for e in self.events:
            if (
                isinstance(e, FlakyLink)
                and e.source == source
                and e.target == target
                and e.active(when)
            ):
                return e
        return None

    def slow_factor(self, source: str, target: str, when: float) -> float:
        """Combined slowdown multiplier for this pair at ``when`` (1.0
        when no :class:`SlowLink` is active; overlapping events stack)."""
        factor = 1.0
        for e in self.events:
            if (
                isinstance(e, SlowLink)
                and e.source == source
                and e.target == target
                and e.active(when)
            ):
                factor *= e.factor
        return factor

    # -- construction ----------------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        sites: Sequence[str],
        transient_only: bool = True,
        max_events: int = 3,
        horizon: float = 0.25,
        pairs: Sequence[tuple[str, str]] | None = None,
    ) -> "FaultPlan":
        """Draw a seeded random fault plan over ``sites``.

        With ``transient_only`` (the default, used by the chaos
        equivalence suite) only :class:`FlakyLink` and :class:`SlowLink`
        events are drawn — faults a retrying executor must absorb with
        row-identical results.  Otherwise one :class:`SiteCrash` or
        permanent :class:`LinkDown` may be included as well.

        The default ``horizon`` matches the makespan scale of the
        benchmark plans under the synthetic α + β·bytes network (tens to
        hundreds of simulated milliseconds) so drawn onsets actually
        intersect executions.  Pass ``pairs`` (e.g. the (source, target)
        pairs a fault-free run actually shipped over) to restrict link
        events to links the plan uses — random site pairs mostly miss.
        """
        rng = random.Random(seed)
        ordered = sorted(sites)
        if len(ordered) < 2:
            return cls()
        link_pool = sorted(set(pairs)) if pairs else None
        plan = cls()
        for _ in range(rng.randint(1, max_events)):
            if link_pool:
                src, dst = link_pool[rng.randrange(len(link_pool))]
            else:
                src, dst = rng.sample(ordered, 2)
            # Transfers cluster near t = 0 on the simulated clock (every
            # leaf fragment starts immediately), so half the onsets land
            # exactly there — otherwise most drawn windows would cover
            # no attempt instant at all.
            onset = 0.0 if rng.random() < 0.5 else round(rng.uniform(0.0, horizon), 3)
            if rng.random() < 0.6:
                plan.add(
                    FlakyLink(
                        src, dst, at=onset, duration=round(rng.uniform(0.02, 0.2), 3)
                    )
                )
            else:
                plan.add(
                    SlowLink(
                        src,
                        dst,
                        factor=round(rng.uniform(1.5, 5.0), 2),
                        at=onset,
                        duration=round(rng.uniform(0.1, 0.5), 3),
                    )
                )
        if not transient_only and rng.random() < 0.5:
            plan.add(SiteCrash(rng.choice(ordered), at=round(rng.uniform(0.0, horizon), 3)))
        return plan

    def __str__(self) -> str:
        return "; ".join(str(e) for e in self.events) or "(no faults)"


def stable_fraction(*tokens: object) -> float:
    """Deterministic pseudo-random fraction in [0, 1) from tokens — used
    for retry jitter so a transfer's schedule does not depend on thread
    completion order (same approach as the synthetic network's layout)."""
    digest = hashlib.sha256(
        "\x1f".join(str(t) for t in tokens).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def parse_fault_spec(spec: str, locations: Iterable[str] | None = None) -> FaultPlan:
    """Parse the CLI fault syntax into a :class:`FaultPlan`.

    Events are ``;``-separated.  Grammar per event::

        crash:SITE@T
        drop:SRC->DST@T[+DURATION]
        slow:SRC->DST@T[+DURATION]xFACTOR
        flaky:SRC->DST@T+DURATION
        random:SEED            (seeded transient plan over ``locations``)

    Examples: ``crash:Asia@0.5``, ``flaky:Europe->Asia@0+0.3``,
    ``slow:Europe->Asia@0x4``, ``random:42``.
    """
    plan = FaultPlan()
    for raw in spec.split(";"):
        part = raw.strip()
        if not part:
            continue
        kind, _, body = part.partition(":")
        try:
            if kind == "random":
                if locations is None:
                    raise ValueError("random fault plans need the site list")
                seed_plan = FaultPlan.random(int(body), sorted(locations))
                plan.events.extend(seed_plan.events)
                continue
            if kind == "crash":
                site, _, onset = body.partition("@")
                plan.add(SiteCrash(site, at=float(onset or 0.0)))
                continue
            pair, _, timing = body.partition("@")
            src, arrow, dst = pair.partition("->")
            if not arrow or not src or not dst:
                raise ValueError("expected SRC->DST")
            if kind == "drop":
                onset, _, duration = timing.partition("+")
                plan.add(
                    LinkDown(
                        src,
                        dst,
                        at=float(onset or 0.0),
                        duration=float(duration) if duration else None,
                    )
                )
            elif kind == "slow":
                window, x, factor = timing.rpartition("x")
                if not x:
                    raise ValueError("expected xFACTOR")
                onset, _, duration = window.partition("+")
                plan.add(
                    SlowLink(
                        src,
                        dst,
                        factor=float(factor),
                        at=float(onset or 0.0),
                        duration=float(duration) if duration else None,
                    )
                )
            elif kind == "flaky":
                onset, plus, duration = timing.partition("+")
                if not plus:
                    raise ValueError("expected @ONSET+DURATION")
                plan.add(
                    FlakyLink(src, dst, at=float(onset or 0.0), duration=float(duration))
                )
            else:
                raise ValueError(f"unknown fault kind {kind!r}")
        except ValueError as error:
            raise ExecutionError(f"bad fault event {part!r}: {error}") from None
    return plan
