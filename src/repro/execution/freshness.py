"""Runtime freshness enforcement policy.

PR 8's ``--max-staleness`` pruned replica candidates at *planning*
time; a replica fresh when the plan was built could still serve
arbitrarily stale rows at execution or failover time.  This module is
the runtime half of the freshness model: a :class:`FreshnessPolicy`
pairs a :class:`~repro.catalog.FreshnessTracker` (which derives each
replica's staleness at any simulated instant from its refresh schedule)
with an enforcement mode, and the fragment scheduler consults it at
every scan-bearing admission and every failover decision — the bound is
re-checked *at that instant*, never trusted from plan time.

Modes
-----
``prefer-fresh``
    Demote off any replica lagging the primary when a fresher legal
    copy exists (soft demotion — a stale-within-bound read is committed
    when nothing fresher is placeable); a bound violation always
    demotes or degrades, never serves.
``wait-for-refresh``
    Park the fragment until the violating replica's next refresh
    completion, bounded by the retry policy's fragment timeout; demote
    when no refresh is coming or the wait would blow the timeout.
``read-stale``
    Serve any read within the bound without demotion or waiting
    (bounded staleness, minimum disruption); violations still demote.
``plan-only``
    PR 8's behavior, kept as the experiment baseline: staleness is
    *recorded* at every read but never enforced — this is the arm that
    demonstrably serves bound-violating rows under a paused-refresh
    fault, which the independent auditor then flags.
"""

from __future__ import annotations

from ..catalog import FRESHNESS_EPS, FreshnessTracker
from ..errors import InvalidParameterError
from .fragments import Fragment, scan_sites
from .metrics import ScanRead

#: Enforcement modes, in CLI ``--staleness-policy`` order.
FRESHNESS_MODES = ("prefer-fresh", "wait-for-refresh", "read-stale", "plan-only")

#: Cap on wait-for-refresh iterations per admission: each round waits
#: for the *latest* violating replica's refresh, so more than a handful
#: of rounds means refreshes cannot outrun the bound at all.
MAX_REFRESH_WAITS = 8


class FreshnessPolicy:
    """How the scheduler reacts to replica staleness at read time."""

    def __init__(
        self,
        tracker: FreshnessTracker,
        mode: str = "prefer-fresh",
        max_staleness: float | None = None,
    ) -> None:
        if mode not in FRESHNESS_MODES:
            raise InvalidParameterError(
                f"unknown staleness policy {mode!r}; expected one of "
                f"{', '.join(FRESHNESS_MODES)}"
            )
        if max_staleness is not None and max_staleness < 0:
            raise InvalidParameterError(
                f"max staleness bound must be >= 0 seconds, got {max_staleness}"
            )
        self.tracker = tracker
        self.mode = mode
        self.max_staleness = max_staleness

    @property
    def enforcing(self) -> bool:
        """Whether staleness violations alter scheduling decisions
        (``plan-only`` observes without enforcing)."""
        return self.mode != "plan-only"

    def within_bound(self, staleness: float) -> bool:
        """Does a read at this staleness satisfy the bound?  (No bound
        configured = any staleness is acceptable.)"""
        if self.max_staleness is None:
            return True
        return staleness <= self.max_staleness + FRESHNESS_EPS

    def replica_reads(self, fragment: Fragment, at: float) -> tuple[ScanRead, ...]:
        """The fragment's base-table reads *from replica sites* at
        instant ``at``, with each copy's current staleness.  Primary
        reads are exact by definition and not tracked."""
        reads = []
        for database, table, site in scan_sites(fragment):
            if not self.tracker.is_replica_site(database, table, site):
                continue
            staleness = self.tracker.staleness(database, table, site, at)
            reads.append(ScanRead(database, table, site, at, staleness))
        return tuple(reads)

    def site_staleness(
        self, fragment: Fragment, site: str, at: float
    ) -> float:
        """Worst-case staleness were the fragment's scans all read at
        ``site`` at instant ``at`` (0.0 when every scan finds its
        primary there).  Used by the failover planner to rank and
        bound-filter candidate replica sites."""
        worst = 0.0
        for database, table, _ in scan_sites(fragment):
            if self.tracker.is_replica_site(database, table, site):
                worst = max(
                    worst, self.tracker.staleness(database, table, site, at)
                )
        return worst
