"""Splitting located plans into per-site fragments at SHIP boundaries.

A located :class:`~repro.plan.PhysicalPlan` is a tree whose cross-site
edges are materialized as :class:`~repro.plan.Ship` operators.  Real
geo-distributed engines do not evaluate such a tree on one node: each
site runs the maximal subtree it owns (a *fragment*) and streams the
result over the WAN to the consuming site.  This module performs that
cut: every Ship operator becomes an edge of an explicit fragment DAG
(for plan trees the DAG is a tree of fragments, but consumers may have
any number of producers).

Fragment anatomy
----------------

* A fragment's ``root`` is either the plan root or the child of a cut
  Ship; its body is the subtree below the root, *stopping at* (and
  including, as leaves) any further Ship operators.
* Each Ship leaf inside a fragment is fed by exactly one producer
  fragment (the one rooted at ``ship.child``); the producer's ``output``
  is that same Ship node.  A fragment whose root is itself a Ship (a
  relayed transfer, e.g. result delivery of an already-shipped plan)
  simply has a single-leaf body.
* ``fragments`` is in topological order — every producer precedes its
  consumer, and the result-producing fragment is last.

The scheduler (:mod:`repro.execution.scheduler`) executes this DAG on a
thread pool and advances a simulated clock along its edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..plan import PhysicalPlan, Ship, explain_physical


@dataclass(frozen=True)
class FragmentInput:
    """One incoming WAN edge of a fragment."""

    producer: int  # index of the fragment computing the shipped rows
    ship: Ship  # the cut Ship operator (a leaf of the consuming fragment)


@dataclass
class Fragment:
    """A maximal single-site subtree of a located physical plan."""

    index: int
    root: PhysicalPlan
    location: str
    inputs: tuple[FragmentInput, ...] = ()
    #: The Ship operator this fragment's result feeds (None for the
    #: result-producing root fragment).
    output: Ship | None = None
    #: Index of the fragment containing ``output`` (None for the root).
    consumer: int | None = None

    @property
    def operator_count(self) -> int:
        """Operators in the fragment body (cut Ship leaves included)."""
        cut_ships = {id(entry.ship) for entry in self.inputs}
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if id(node) in cut_ships:
                continue
            stack.extend(node.children())
        return count


@dataclass
class FragmentDAG:
    """All fragments of one plan, producers before consumers."""

    fragments: list[Fragment] = field(default_factory=list)

    @property
    def root_index(self) -> int:
        return len(self.fragments) - 1

    @property
    def root(self) -> Fragment:
        return self.fragments[self.root_index]

    def ancestors(self, index: int) -> set[int]:
        """Indices of the fragments downstream of ``index`` (consumers,
        transitively) — the fragments that cannot start before it."""
        out: set[int] = set()
        consumer = self.fragments[index].consumer
        while consumer is not None:
            out.add(consumer)
            consumer = self.fragments[consumer].consumer
        return out

    def independent_pairs(self) -> int:
        """Number of fragment pairs with no dependency either way — the
        plan's potential for concurrent cross-site execution."""
        n = len(self.fragments)
        dependent = 0
        for i in range(n):
            dependent += len(self.ancestors(i))  # counts each ordered pair once
        return n * (n - 1) // 2 - dependent


def scan_sites(fragment: Fragment) -> tuple[tuple[str, str, str], ...]:
    """``(database, table, site)`` of every base-table scan in the
    fragment's body — the replica identity of the fragment's reads.
    With replicated catalogs the site may differ from the fragment's
    table's primary location (it then names the replica being read);
    the trace payload codec and the auditor both consume this."""
    from ..plan import TableScan

    cut_ships = {id(entry.ship) for entry in fragment.inputs}
    found: list[tuple[str, str, str]] = []
    stack = [fragment.root]
    while stack:
        node = stack.pop()
        if id(node) in cut_ships:
            continue
        if isinstance(node, TableScan):
            found.append((node.database, node.table, node.location))
        stack.extend(node.children())
    return tuple(sorted(found))


def fragment_plan(plan: PhysicalPlan) -> FragmentDAG:
    """Cut ``plan`` at every Ship edge into a :class:`FragmentDAG`."""
    dag = FragmentDAG()

    def build(root: PhysicalPlan, output: Ship | None) -> int:
        cuts: list[Ship] = []

        def collect(node: PhysicalPlan) -> None:
            if isinstance(node, Ship):
                cuts.append(node)
                return  # the subtree below the cut belongs to the producer
            for child in node.children():
                collect(child)

        collect(root)
        inputs = []
        for ship in cuts:
            assert ship.child is not None
            producer = build(ship.child, ship)
            inputs.append(FragmentInput(producer=producer, ship=ship))
        index = len(dag.fragments)
        dag.fragments.append(
            Fragment(
                index=index,
                root=root,
                location=root.location,
                inputs=tuple(inputs),
                output=output,
            )
        )
        for entry in inputs:
            dag.fragments[entry.producer].consumer = index
        return index

    build(plan, None)
    return dag


def independent_pairs(plan: PhysicalPlan) -> int:
    """Convenience: :meth:`FragmentDAG.independent_pairs` of ``plan``."""
    return fragment_plan(plan).independent_pairs()


def explain_fragments(dag: FragmentDAG, show_rows: bool = False) -> str:
    """Render a fragment DAG, one indented operator tree per fragment.

    Cut Ship leaves are replaced by a reference to the producing
    fragment, so each fragment reads as the self-contained program its
    site would run.
    """
    by_ship = {id(entry.ship): entry.producer for f in dag.fragments for entry in f.inputs}
    lines: list[str] = []
    for fragment in dag.fragments:
        feeds = (
            f" feeds f{fragment.consumer} via "
            f"{fragment.output.source} -> {fragment.output.target}"
            if fragment.output is not None and fragment.consumer is not None
            else " produces the query result"
        )
        scans = scan_sites(fragment)
        reads = (
            " reading " + ", ".join(f"{db}.{table}@{site}" for db, table, site in scans)
            if scans
            else ""
        )
        lines.append(f"Fragment f{fragment.index} @ {fragment.location}{feeds}{reads}")

        def prune(node: PhysicalPlan) -> str | None:
            producer = by_ship.get(id(node))
            if producer is not None and isinstance(node, Ship):
                return f"[input from f{producer}: Ship {node.source} -> {node.target}]"
            return None

        body = explain_physical(fragment.root, show_rows=show_rows, prune=prune)
        lines.extend("  " + line for line in body.splitlines())
    return "\n".join(lines)
