"""Reference (single-site) plan construction.

Converts a bound logical plan directly into an executable physical plan
with every operator at one location and no SHIP operators — as if all
data lived in one centralized database.  Used as the semantics oracle:
an optimized geo-distributed plan must produce exactly the rows the
reference plan produces (the paper's requirement that compliant plans
"retain the query semantics").
"""

from __future__ import annotations

from ..errors import ExecutionError
from ..expr import ColumnRef, Comparison, ComparisonOp, conjunction, split_conjuncts
from ..plan import (
    Filter,
    HashAggregate,
    HashJoin,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalUnion,
    NestedLoopJoin,
    PhysicalPlan,
    Project,
    Sort,
    TableScan,
    UnionAll,
)


def reference_plan(plan: LogicalPlan, location: str = "reference") -> PhysicalPlan:
    """Translate a logical plan 1:1 into physical operators at one site."""
    if isinstance(plan, LogicalScan):
        return TableScan(
            fields=plan.fields,
            location=location,
            table=plan.table,
            database=plan.database,
            alias=plan.alias,
        )
    if isinstance(plan, LogicalFilter):
        return Filter(
            fields=plan.fields,
            location=location,
            child=reference_plan(plan.child, location),
            predicate=plan.predicate,
        )
    if isinstance(plan, LogicalProject):
        return Project(
            fields=plan.fields,
            location=location,
            child=reference_plan(plan.child, location),
            exprs=plan.exprs,
            names=plan.names,
        )
    if isinstance(plan, LogicalJoin):
        left = reference_plan(plan.left, location)
        right = reference_plan(plan.right, location)
        left_names = set(left.field_names)
        left_keys: list[ColumnRef] = []
        right_keys: list[ColumnRef] = []
        residual = []
        for conjunct in split_conjuncts(plan.condition):
            if (
                isinstance(conjunct, Comparison)
                and conjunct.op == ComparisonOp.EQ
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
                and (conjunct.left.name in left_names)
                != (conjunct.right.name in left_names)
            ):
                if conjunct.left.name in left_names:
                    left_keys.append(conjunct.left)
                    right_keys.append(conjunct.right)
                else:
                    left_keys.append(conjunct.right)
                    right_keys.append(conjunct.left)
            else:
                residual.append(conjunct)
        if left_keys:
            return HashJoin(
                fields=plan.fields,
                location=location,
                left=left,
                right=right,
                left_keys=tuple(left_keys),
                right_keys=tuple(right_keys),
                residual=conjunction(residual) if residual else None,
            )
        return NestedLoopJoin(
            fields=plan.fields,
            location=location,
            left=left,
            right=right,
            condition=plan.condition,
        )
    if isinstance(plan, LogicalAggregate):
        return HashAggregate(
            fields=plan.fields,
            location=location,
            child=reference_plan(plan.child, location),
            group_keys=plan.group_keys,
            aggregates=plan.aggregates,
            agg_names=plan.agg_names,
        )
    if isinstance(plan, LogicalUnion):
        return UnionAll(
            fields=plan.fields,
            location=location,
            inputs=tuple(reference_plan(c, location) for c in plan.inputs),
        )
    if isinstance(plan, LogicalSort):
        return Sort(
            fields=plan.fields,
            location=location,
            child=reference_plan(plan.child, location),
            sort_keys=plan.sort_keys,
            limit=plan.limit,
        )
    raise ExecutionError(f"cannot build reference plan for {type(plan).__name__}")
