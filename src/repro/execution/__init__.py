"""Physical plan execution over geo-distributed in-memory data."""

from .metrics import ExecutionMetrics, ShipRecord
from .operators import OperatorExecutor, actual_bytes
from .engine import ExecutionEngine, ExecutionResult
from .reference import reference_plan

__all__ = [
    "ExecutionMetrics",
    "ShipRecord",
    "OperatorExecutor",
    "actual_bytes",
    "ExecutionEngine",
    "ExecutionResult",
    "reference_plan",
]
