"""Physical plan execution over geo-distributed in-memory data."""

from .metrics import (
    ExecutionMetrics,
    FragmentRecord,
    OperatorRecord,
    ShipRecord,
)
from .operators import OperatorExecutor, actual_bytes
from .fragments import (
    Fragment,
    FragmentDAG,
    FragmentInput,
    explain_fragments,
    fragment_plan,
    independent_pairs,
)
from .scheduler import FragmentScheduler
from .engine import ExecutionEngine, ExecutionResult
from .reference import reference_plan

__all__ = [
    "ExecutionMetrics",
    "FragmentRecord",
    "OperatorRecord",
    "ShipRecord",
    "OperatorExecutor",
    "actual_bytes",
    "Fragment",
    "FragmentDAG",
    "FragmentInput",
    "explain_fragments",
    "fragment_plan",
    "independent_pairs",
    "FragmentScheduler",
    "ExecutionEngine",
    "ExecutionResult",
    "reference_plan",
]
