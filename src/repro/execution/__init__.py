"""Physical plan execution over geo-distributed in-memory data."""

from .metrics import (
    ExecutionMetrics,
    FragmentRecord,
    OperatorRecord,
    PartialFailure,
    RecoveryRecord,
    ScanRead,
    ShipRecord,
)
from .operators import OperatorExecutor, RowBatch, actual_bytes
from .vectorized import BatchOperatorExecutor, ColumnBatch, column_bytes
from .fragments import (
    Fragment,
    FragmentDAG,
    FragmentInput,
    explain_fragments,
    fragment_plan,
    independent_pairs,
    scan_sites,
)
from .faults import (
    FaultPlan,
    FlakyLink,
    LinkDown,
    SiteCrash,
    SlowLink,
    parse_fault_spec,
    stable_fraction,
)
from .freshness import FRESHNESS_MODES, FreshnessPolicy
from .recovery import (
    FailoverPlanner,
    RetryPolicy,
    failover_candidates,
    fragment_scans,
    relocate_fragment,
)
from .scheduler import (
    EXECUTOR_BACKENDS,
    FragmentScheduler,
    validate_executor_name,
    validate_worker_count,
)
from .engine import ExecutionEngine, ExecutionResult
from .reference import reference_plan

__all__ = [
    "ExecutionMetrics",
    "FragmentRecord",
    "OperatorRecord",
    "PartialFailure",
    "RecoveryRecord",
    "ScanRead",
    "ShipRecord",
    "FRESHNESS_MODES",
    "FreshnessPolicy",
    "OperatorExecutor",
    "RowBatch",
    "actual_bytes",
    "BatchOperatorExecutor",
    "ColumnBatch",
    "column_bytes",
    "Fragment",
    "FragmentDAG",
    "FragmentInput",
    "explain_fragments",
    "fragment_plan",
    "independent_pairs",
    "scan_sites",
    "FaultPlan",
    "FlakyLink",
    "LinkDown",
    "SiteCrash",
    "SlowLink",
    "parse_fault_spec",
    "stable_fraction",
    "FailoverPlanner",
    "RetryPolicy",
    "failover_candidates",
    "fragment_scans",
    "relocate_fragment",
    "FragmentScheduler",
    "EXECUTOR_BACKENDS",
    "validate_executor_name",
    "validate_worker_count",
    "ExecutionEngine",
    "ExecutionResult",
    "reference_plan",
]
