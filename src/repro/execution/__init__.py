"""Physical plan execution over geo-distributed in-memory data."""

from .metrics import (
    ExecutionMetrics,
    FragmentRecord,
    OperatorRecord,
    PartialFailure,
    RecoveryRecord,
    ShipRecord,
)
from .operators import OperatorExecutor, actual_bytes
from .fragments import (
    Fragment,
    FragmentDAG,
    FragmentInput,
    explain_fragments,
    fragment_plan,
    independent_pairs,
)
from .faults import (
    FaultPlan,
    FlakyLink,
    LinkDown,
    SiteCrash,
    SlowLink,
    parse_fault_spec,
    stable_fraction,
)
from .recovery import (
    FailoverPlanner,
    RetryPolicy,
    failover_candidates,
    relocate_fragment,
)
from .scheduler import FragmentScheduler, validate_worker_count
from .engine import ExecutionEngine, ExecutionResult
from .reference import reference_plan

__all__ = [
    "ExecutionMetrics",
    "FragmentRecord",
    "OperatorRecord",
    "PartialFailure",
    "RecoveryRecord",
    "ShipRecord",
    "OperatorExecutor",
    "actual_bytes",
    "Fragment",
    "FragmentDAG",
    "FragmentInput",
    "explain_fragments",
    "fragment_plan",
    "independent_pairs",
    "FaultPlan",
    "FlakyLink",
    "LinkDown",
    "SiteCrash",
    "SlowLink",
    "parse_fault_spec",
    "stable_fraction",
    "FailoverPlanner",
    "RetryPolicy",
    "failover_candidates",
    "relocate_fragment",
    "FragmentScheduler",
    "validate_worker_count",
    "ExecutionEngine",
    "ExecutionResult",
    "reference_plan",
]
