"""Execution metrics, most importantly per-SHIP transfer accounting.

Plan *quality* in the paper (§7.4, Fig. 6(g,h)) is the execution cost
arising from shipping intermediate data between sites under the
``α + β·bytes`` message model.  The executor records every SHIP's actual
row count and byte volume so the harness can compute that cost from a
real execution rather than from estimates.

Two cost views coexist:

* :attr:`ExecutionMetrics.shipping_seconds` — the plain *sum* of all
  simulated transfer times.  Faithful for chain (linear) plans, but an
  overestimate of response time for bushy plans where sites transfer
  concurrently.
* :attr:`ExecutionMetrics.makespan_seconds` — the critical-path response
  time produced by the fragment scheduler's event-driven simulation
  (:mod:`repro.execution.scheduler`): fragments start once all their
  inputs have arrived, and independent transfers overlap.  Always
  ``makespan_seconds <= shipping_seconds``; equality holds exactly when
  every SHIP lies on one path (a chain plan).

As an observability hook the executor additionally records one
:class:`OperatorRecord` per evaluated operator (rows out, self compute
time) and — when the fragment scheduler runs — one
:class:`FragmentRecord` per fragment (measured local compute plus the
simulated start/finish instants on the WAN clock).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..geo import NetworkModel


@dataclass
class ShipRecord:
    """One SHIP operator's measured transfer.

    Under fault injection the final *successful* attempt is recorded:
    ``seconds`` is that attempt's transfer time (including any slow-link
    degradation), ``attempts`` counts every try, and
    ``retry_wait_seconds`` is the backoff the consumer waited through on
    the simulated clock (it inflates the makespan, not ``seconds``)."""

    source: str
    target: str
    rows: int
    bytes: int
    seconds: float  # simulated transfer time under the network model
    attempts: int = 1
    retry_wait_seconds: float = 0.0
    #: Compressed size actually sent (``None`` — legacy plain wire —
    #: means wire == logical).  :attr:`bytes` always stays the logical
    #: uncompressed size so byte-equivalence across executors holds.
    wire_bytes: int | None = None
    #: Chunks the transfer was split into (1 = monolithic).
    chunks: int = 1


@dataclass
class OperatorRecord:
    """One operator evaluation (observability hook).

    ``seconds`` is *self* time: wall-clock spent in the operator itself,
    excluding its children — so the records sum to the plan's total
    local compute time.
    """

    operator: str
    location: str
    rows_out: int
    seconds: float


@dataclass
class FragmentRecord:
    """One fragment execution under the parallel scheduler.

    ``compute_seconds`` is measured wall-clock work; the ``sim_*``
    instants live on the simulated WAN clock, where local compute is
    free (the paper's cost model charges transfers only):
    ``sim_start_seconds`` is when the last input transfer arrived at the
    fragment's site and ``sim_finish_seconds`` is when the fragment's
    output transfer has been delivered to its consumer (equal to
    ``sim_start_seconds`` for the result-producing root fragment).
    """

    index: int
    location: str
    root: str  # describe() of the fragment's root operator
    operators: int
    rows_out: int
    compute_seconds: float
    sim_start_seconds: float
    sim_finish_seconds: float
    inputs: tuple[int, ...]
    consumer: int | None


@dataclass
class RecoveryRecord:
    """One compliance-preserving failover performed during execution."""

    fragment_index: int
    from_site: str
    to_site: str
    reason: str
    at_seconds: float  # simulated instant the failure was detected
    #: True when a policy evaluator re-validated the new placement (it
    #: is only False when the scheduler runs without a compliance guard,
    #: e.g. for baseline plans with no policies registered).
    validated: bool = False
    #: ``"replica"`` when the fragment scans a base table and moved to a
    #: site holding a compliant replica of it; ``"replacement"`` for the
    #: classic ℰ-restricted re-placement of a scan-free fragment.
    kind: str = "replacement"
    #: Staleness (seconds) of the demoted replica at the decision
    #: instant, for ``reason == "stale"`` recoveries; ``None`` otherwise.
    staleness_at_read: float | None = None


@dataclass(frozen=True)
class ScanRead:
    """One base-table read committed by an admitted fragment: which
    copy was read at which simulated instant, and how stale it was.

    The freshness audit trail's unit of account — every admission of a
    scan-bearing fragment under an active freshness policy records one
    per scan, and the trace's ``scan_read`` events mirror them 1:1 so
    runtime counters reconcile against the trace."""

    database: str
    table: str
    site: str
    at_seconds: float
    staleness_seconds: float


@dataclass
class PartialFailure:
    """Typed outcome of a query that could not be recovered.

    Returned (on the metrics) instead of raising, so callers can
    distinguish "the WAN failed in a way no compliant recovery could
    absorb" from a genuine executor bug — the latter still raises."""

    fragment_index: int
    location: str
    error_type: str  # repro.errors class name, e.g. "SiteUnavailableError"
    message: str
    at_seconds: float = 0.0

    def __str__(self) -> str:
        return (
            f"fragment f{self.fragment_index} @ {self.location}: "
            f"{self.error_type}: {self.message}"
        )


@dataclass
class ExecutionMetrics:
    """Metrics of one plan execution."""

    rows_scanned: int = 0
    rows_output: int = 0
    operators_executed: int = 0
    ships: list[ShipRecord] = field(default_factory=list)
    operators: list[OperatorRecord] = field(default_factory=list)
    fragments: list[FragmentRecord] = field(default_factory=list)
    #: Simulated critical-path response time; only populated by the
    #: fragment scheduler (``ExecutionEngine(..., parallel=True)``).
    #: When the scheduler ran with a clock offset (the query server
    #: admits queries at shared-clock instants) this is the *absolute*
    #: finish instant; subtract :attr:`start_at_seconds` for the
    #: query's own service time.
    makespan_seconds: float = 0.0
    #: Simulated instant the scheduler's clock started at (0.0 except
    #: under the query server).
    start_at_seconds: float = 0.0
    #: Transfer attempts refused outright by an open per-link circuit
    #: breaker (query server only; 0 without a breaker registry).
    breaker_fast_fails: int = 0
    #: Per-site simulated clock after the last delivery event at that
    #: site (fragment scheduler only).
    site_clock_seconds: dict[str, float] = field(default_factory=dict)
    #: Failovers performed during this execution (fault injection only).
    recoveries: list[RecoveryRecord] = field(default_factory=list)
    #: Failovers that moved a scan-bearing fragment to a compliant
    #: replica site (the ``kind == "replica"`` subset of recoveries).
    replica_failovers: int = 0
    #: Replica failovers triggered by an open circuit breaker on the
    #: fragment's input/output links (fast-fail steering).
    replica_switches_breaker: int = 0
    #: Replica failovers of fragments whose own scan site died — without
    #: a replica these were guaranteed ``PartialFailure``s (a scan's ℰ
    #: is a singleton without replicas, so no re-placement exists).
    partial_failures_avoided: int = 0
    #: Base-table reads committed under an active freshness policy, one
    #: per scan per admitted fragment (freshness runs only).
    scan_reads: list[ScanRead] = field(default_factory=list)
    #: Committed reads whose copy lagged the primary (staleness > 0) —
    #: always within the bound when a freshness policy was enforcing.
    stale_reads: int = 0
    #: Admissions delayed until a violating replica's next refresh
    #: (``wait-for-refresh`` policy only).
    refresh_waits: int = 0
    #: Total simulated seconds spent in those waits (inflates makespan).
    refresh_wait_seconds: float = 0.0
    #: Fragments demoted off a too-stale replica to a fresher legal copy
    #: (the ``reason == "stale"`` subset of recoveries).
    freshness_demotions: int = 0
    #: Set when the query degraded instead of completing; rows are empty.
    partial_failure: PartialFailure | None = None

    @property
    def total_bytes_shipped(self) -> int:
        return sum(s.bytes for s in self.ships)

    @property
    def total_rows_shipped(self) -> int:
        return sum(s.rows for s in self.ships)

    @property
    def total_wire_bytes_shipped(self) -> int:
        """Compressed bytes that actually crossed the WAN (equals
        :attr:`total_bytes_shipped` when no transfer was compressed)."""
        return sum(s.bytes if s.wire_bytes is None else s.wire_bytes for s in self.ships)

    @property
    def total_chunks_shipped(self) -> int:
        """Wire chunks across all transfers (ships when monolithic)."""
        return sum(s.chunks for s in self.ships)

    @property
    def shipping_seconds(self) -> float:
        """Total simulated cross-site transfer time — the paper's
        execution-cost metric (an upper bound on response time for
        fault-free runs; retry waits are *not* included here)."""
        return sum(s.seconds for s in self.ships)

    @property
    def retry_wait_seconds(self) -> float:
        """Total simulated backoff waited across all transfers; part of
        the makespan but not of :attr:`shipping_seconds`."""
        return sum(s.retry_wait_seconds for s in self.ships)

    @property
    def transfer_attempts(self) -> int:
        """Attempts across all successful transfers (1 each when no
        faults were injected)."""
        return sum(s.attempts for s in self.ships)

    @property
    def service_seconds(self) -> float:
        """Critical-path response time relative to the query's own
        admission instant (equals :attr:`makespan_seconds` outside the
        query server, where the clock starts at 0)."""
        return max(0.0, self.makespan_seconds - self.start_at_seconds)

    @property
    def local_compute_seconds(self) -> float:
        """Measured wall-clock compute, summed over fragments when the
        scheduler ran, else over per-operator self times."""
        if self.fragments:
            return sum(f.compute_seconds for f in self.fragments)
        return sum(op.seconds for op in self.operators)

    def record_ship(
        self,
        network: NetworkModel,
        source: str,
        target: str,
        rows: int,
        nbytes: int,
        wire_bytes: int | None = None,
        chunks: int = 1,
    ) -> None:
        seconds = network.transfer_time(
            source, target, nbytes if wire_bytes is None else wire_bytes
        )
        self.ships.append(
            ShipRecord(
                source,
                target,
                rows,
                nbytes,
                seconds,
                wire_bytes=wire_bytes,
                chunks=chunks,
            )
        )

    def record_operator(
        self, operator: str, location: str, rows_out: int, seconds: float
    ) -> None:
        self.operators.append(OperatorRecord(operator, location, rows_out, seconds))

    def absorb(self, other: "ExecutionMetrics") -> None:
        """Fold one fragment's private metrics into this plan-level
        object (the scheduler merges in deterministic fragment order)."""
        self.rows_scanned += other.rows_scanned
        self.operators_executed += other.operators_executed
        self.ships.extend(other.ships)
        self.operators.extend(other.operators)
