"""Execution metrics, most importantly per-SHIP transfer accounting.

Plan *quality* in the paper (§7.4, Fig. 6(g,h)) is the execution cost
arising from shipping intermediate data between sites under the
``α + β·bytes`` message model.  The executor records every SHIP's actual
row count and byte volume so the harness can compute that cost from a
real execution rather than from estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..geo import NetworkModel


@dataclass
class ShipRecord:
    """One SHIP operator's measured transfer."""

    source: str
    target: str
    rows: int
    bytes: int
    seconds: float  # simulated transfer time under the network model


@dataclass
class ExecutionMetrics:
    """Metrics of one plan execution."""

    rows_scanned: int = 0
    rows_output: int = 0
    operators_executed: int = 0
    ships: list[ShipRecord] = field(default_factory=list)

    @property
    def total_bytes_shipped(self) -> int:
        return sum(s.bytes for s in self.ships)

    @property
    def total_rows_shipped(self) -> int:
        return sum(s.rows for s in self.ships)

    @property
    def shipping_seconds(self) -> float:
        """Total simulated cross-site transfer time — the paper's
        execution-cost metric."""
        return sum(s.seconds for s in self.ships)

    def record_ship(
        self, network: NetworkModel, source: str, target: str, rows: int, nbytes: int
    ) -> None:
        seconds = network.transfer_time(source, target, nbytes)
        self.ships.append(ShipRecord(source, target, rows, nbytes, seconds))
