"""Abstract syntax tree produced by the SQL parser (pre-binding).

AST expression nodes are untyped and reference columns by (qualifier,
name); the binder resolves them against the catalog into the typed
:mod:`repro.expr` representation with base-column provenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


# -- scalar expressions ------------------------------------------------------


class AstExpr:
    """Base class of AST scalar expressions."""


@dataclass(frozen=True)
class AstColumn(AstExpr):
    qualifier: str | None
    name: str

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class AstLiteral(AstExpr):
    value: object  # int | float | str | datetime.date | bool

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class AstBinary(AstExpr):
    """Binary operator: comparison, arithmetic, AND, OR."""

    op: str  # '=', '<>', '<', '<=', '>', '>=', '+', '-', '*', '/', 'AND', 'OR'
    left: AstExpr
    right: AstExpr


@dataclass(frozen=True)
class AstUnary(AstExpr):
    op: str  # 'NOT', '-'
    operand: AstExpr


@dataclass(frozen=True)
class AstLike(AstExpr):
    operand: AstExpr
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class AstIn(AstExpr):
    operand: AstExpr
    values: tuple[AstLiteral, ...]
    negated: bool = False


@dataclass(frozen=True)
class AstBetween(AstExpr):
    operand: AstExpr
    low: AstExpr
    high: AstExpr
    negated: bool = False


@dataclass(frozen=True)
class AstIsNull(AstExpr):
    operand: AstExpr
    negated: bool = False


@dataclass(frozen=True)
class AstFunction(AstExpr):
    """Scalar function call (YEAR, SUBSTRING, ...)."""

    name: str
    args: tuple[AstExpr, ...]


@dataclass(frozen=True)
class AstAggregate(AstExpr):
    """Aggregate call; ``argument`` is None for COUNT(*)."""

    func: str  # SUM | COUNT | AVG | MIN | MAX
    argument: AstExpr | None
    distinct: bool = False


# -- query structure ---------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expr: AstExpr
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    """FROM item naming a table: ``name [AS] alias``."""

    name: str
    alias: str | None = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class DerivedTableRef:
    """FROM item for a parenthesized subquery: ``(SELECT ...) AS alias``."""

    query: "SelectQuery"
    alias: str


FromItem = Union[TableRef, DerivedTableRef]


@dataclass(frozen=True)
class OrderItem:
    expr: AstExpr
    descending: bool = False


@dataclass(frozen=True)
class SelectQuery:
    """One SELECT block.

    ``star`` marks ``SELECT *``; explicit JOIN ... ON syntax is folded by
    the parser into the from-item list plus WHERE conjuncts, which is
    equivalent for inner joins (the only join type the engine supports).
    """

    items: tuple[SelectItem, ...]
    from_items: tuple[FromItem, ...]
    where: AstExpr | None = None
    group_by: tuple[AstExpr, ...] = ()
    having: AstExpr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    star: bool = False
