"""Hand-written tokenizer shared by the SQL parser and the policy
expression parser (policy expressions are deliberately SQL-like, §4)."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import SqlSyntaxError


class TokenType(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    END = "end"


#: Multi-character operators first so the longest match wins.
_SYMBOLS = ("<>", "<=", ">=", "!=", "=", "<", ">", "(", ")", ",", ".", "+", "-", "*", "/")


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    @property
    def upper(self) -> str:
        return self.text.upper()


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into tokens.  Identifiers keep their original case;
    keyword matching is done case-insensitively by the parsers."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            # SQL line comment.
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "'":
            j = i + 1
            buf: list[str] = []
            while True:
                if j >= n:
                    raise SqlSyntaxError("unterminated string literal", i)
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":  # escaped quote
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(text[j])
                j += 1
            tokens.append(Token(TokenType.STRING, "".join(buf), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # Don't swallow a dot that starts a qualified name, as
                    # numbers never directly precede identifiers.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token(TokenType.NUMBER, text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] in "_$"):
                j += 1
            tokens.append(Token(TokenType.IDENT, text[i:j], i))
            i = j
            continue
        for sym in _SYMBOLS:
            if text.startswith(sym, i):
                tokens.append(Token(TokenType.SYMBOL, sym, i))
                i += len(sym)
                break
        else:
            raise SqlSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.END, "", n))
    return tokens


class TokenStream:
    """Cursor over a token list with the lookahead helpers parsers need."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def peek(self, offset: int = 0) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def advance(self) -> Token:
        token = self.current
        if token.type != TokenType.END:
            self._pos += 1
        return token

    def at_keyword(self, *keywords: str) -> bool:
        token = self.current
        return token.type == TokenType.IDENT and token.upper in keywords

    def accept_keyword(self, *keywords: str) -> bool:
        if self.at_keyword(*keywords):
            self.advance()
            return True
        return False

    def expect_keyword(self, keyword: str) -> Token:
        if not self.at_keyword(keyword):
            raise SqlSyntaxError(
                f"expected {keyword}, found {self.current.text!r}",
                self.current.position,
            )
        return self.advance()

    def at_symbol(self, *symbols: str) -> bool:
        token = self.current
        return token.type == TokenType.SYMBOL and token.text in symbols

    def accept_symbol(self, *symbols: str) -> bool:
        if self.at_symbol(*symbols):
            self.advance()
            return True
        return False

    def expect_symbol(self, symbol: str) -> Token:
        if not self.at_symbol(symbol):
            raise SqlSyntaxError(
                f"expected {symbol!r}, found {self.current.text!r}",
                self.current.position,
            )
        return self.advance()

    def expect_ident(self) -> Token:
        token = self.current
        if token.type != TokenType.IDENT:
            raise SqlSyntaxError(
                f"expected identifier, found {token.text!r}", token.position
            )
        return self.advance()

    def expect_end(self) -> None:
        if self.current.type != TokenType.END:
            raise SqlSyntaxError(
                f"unexpected trailing input {self.current.text!r}",
                self.current.position,
            )

    @property
    def exhausted(self) -> bool:
        return self.current.type == TokenType.END
