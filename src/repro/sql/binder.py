"""Semantic analysis: AST → bound logical plan.

The binder resolves table and column names against the geo-distributed
catalog, expands GAV-fragmented tables into UNION ALL of fragment scans
(§7.5), types every expression, attaches base-column provenance, and
shapes SELECT blocks into the logical algebra:

.. code-block:: text

    Sort? ( Project ( Filter?(HAVING) ( Aggregate? ( Filter?(WHERE) (
        Join( ... FROM items ... ) )))))

Output field names are the user-visible names (alias or derived) and are
unique; intermediate names are qualified ``alias.column``.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from ..catalog import Catalog, GlobalTable
from ..datatypes import DataType
from ..errors import BindingError
from ..expr import (
    AggregateCall,
    AggregateFunction,
    And,
    Arithmetic,
    ArithmeticOp,
    BaseColumn,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
    conjunction,
    expression_dtype,
    walk,
)
from ..plan import (
    Field,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalUnion,
)
from .ast import (
    AstAggregate,
    AstBetween,
    AstBinary,
    AstColumn,
    AstExpr,
    AstFunction,
    AstIn,
    AstIsNull,
    AstLike,
    AstLiteral,
    AstUnary,
    DerivedTableRef,
    SelectQuery,
    TableRef,
)
from .parser import parse_query

_COMPARISONS = {
    "=": ComparisonOp.EQ,
    "<>": ComparisonOp.NE,
    "<": ComparisonOp.LT,
    "<=": ComparisonOp.LE,
    ">": ComparisonOp.GT,
    ">=": ComparisonOp.GE,
}
_ARITHMETIC = {
    "+": ArithmeticOp.ADD,
    "-": ArithmeticOp.SUB,
    "*": ArithmeticOp.MUL,
    "/": ArithmeticOp.DIV,
}


@dataclass
class Scope:
    """Column-name resolution scope over a plan's output fields."""

    fields: tuple[Field, ...]

    def resolve(self, qualifier: str | None, name: str) -> Field:
        name_lower = name.lower()
        if qualifier is not None:
            wanted = f"{qualifier.lower()}.{name_lower}"
            for field in self.fields:
                if field.name.lower() == wanted:
                    return field
            raise BindingError(f"unknown column {qualifier}.{name}")
        matches = [
            field
            for field in self.fields
            if field.name.lower() == name_lower
            or field.name.lower().endswith("." + name_lower)
        ]
        if not matches:
            raise BindingError(f"unknown column {name}")
        if len(matches) > 1:
            raise BindingError(
                f"ambiguous column {name}: matches "
                + ", ".join(f.name for f in matches)
            )
        return matches[0]


class Binder:
    """Binds parsed queries against a :class:`~repro.catalog.Catalog`."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # -- public API ----------------------------------------------------------

    def bind(self, query: SelectQuery) -> LogicalPlan:
        return self._bind_select(query)

    def bind_sql(self, sql: str) -> LogicalPlan:
        return self.bind(parse_query(sql))

    # -- FROM clause ---------------------------------------------------------

    def _scan_global_table(self, table: GlobalTable, alias: str) -> LogicalPlan:
        scans: list[LogicalPlan] = []
        for fragment in table.fragments:
            fields = tuple(
                Field(
                    name=f"{alias.lower()}.{col.name.lower()}",
                    dtype=col.dtype,
                    base=BaseColumn(fragment.database, table.name.lower(), col.name.lower()),
                    width=col.width,
                )
                for col in table.schema.columns
            )
            scans.append(
                LogicalScan(
                    table=table.name.lower(),
                    database=fragment.database,
                    location=fragment.location,
                    alias=alias.lower(),
                    scan_fields=fields,
                )
            )
        if len(scans) == 1:
            return scans[0]
        return LogicalUnion(tuple(scans))

    def _bind_from(self, query: SelectQuery) -> LogicalPlan:
        if not query.from_items:
            raise BindingError("FROM clause is required")
        plans: list[LogicalPlan] = []
        aliases: set[str] = set()
        for item in query.from_items:
            if isinstance(item, TableRef):
                alias = item.effective_alias.lower()
                table = self.catalog.table(item.name)
                plan: LogicalPlan = self._scan_global_table(table, alias)
            elif isinstance(item, DerivedTableRef):
                alias = item.alias.lower()
                inner = self._bind_select(item.query)
                # Re-qualify the subquery's output names under the alias.
                exprs = tuple(f.to_ref() for f in inner.fields)
                names = tuple(f"{alias}.{f.name}" for f in inner.fields)
                plan = LogicalProject(inner, exprs, names)
            else:  # pragma: no cover - parser produces only the two kinds
                raise BindingError(f"unsupported FROM item {item!r}")
            if alias in aliases:
                raise BindingError(f"duplicate table alias {alias!r}")
            aliases.add(alias)
            plans.append(plan)
        joined = plans[0]
        for plan in plans[1:]:
            joined = LogicalJoin(joined, plan, None)
        return joined

    # -- expressions ---------------------------------------------------------

    def _bind_expr(self, expr: AstExpr, scope: Scope, allow_aggregates: bool) -> Expression:
        if isinstance(expr, AstLiteral):
            return _bind_literal(expr.value)
        if isinstance(expr, AstColumn):
            return scope.resolve(expr.qualifier, expr.name).to_ref()
        if isinstance(expr, AstBinary):
            left = self._bind_expr(expr.left, scope, allow_aggregates)
            right = self._bind_expr(expr.right, scope, allow_aggregates)
            if expr.op in ("AND", "OR"):
                ctor = And if expr.op == "AND" else Or
                return ctor((left, right))
            if expr.op in _COMPARISONS:
                return Comparison(_COMPARISONS[expr.op], left, right)
            if expr.op in _ARITHMETIC:
                return Arithmetic(_ARITHMETIC[expr.op], left, right)
            raise BindingError(f"unsupported operator {expr.op!r}")
        if isinstance(expr, AstUnary):
            operand = self._bind_expr(expr.operand, scope, allow_aggregates)
            if expr.op == "NOT":
                return Not(operand)
            return Negate(operand)
        if isinstance(expr, AstLike):
            operand = self._bind_expr(expr.operand, scope, allow_aggregates)
            return Like(operand, expr.pattern, expr.negated)
        if isinstance(expr, AstIn):
            operand = self._bind_expr(expr.operand, scope, allow_aggregates)
            values = tuple(_bind_literal(v.value) for v in expr.values)
            return InList(operand, values, expr.negated)
        if isinstance(expr, AstBetween):
            operand = self._bind_expr(expr.operand, scope, allow_aggregates)
            low = self._bind_expr(expr.low, scope, allow_aggregates)
            high = self._bind_expr(expr.high, scope, allow_aggregates)
            between: Expression = And(
                (
                    Comparison(ComparisonOp.GE, operand, low),
                    Comparison(ComparisonOp.LE, operand, high),
                )
            )
            return Not(between) if expr.negated else between
        if isinstance(expr, AstIsNull):
            operand = self._bind_expr(expr.operand, scope, allow_aggregates)
            return IsNull(operand, expr.negated)
        if isinstance(expr, AstFunction):
            args = tuple(self._bind_expr(a, scope, allow_aggregates) for a in expr.args)
            return FunctionCall(expr.name, args)
        if isinstance(expr, AstAggregate):
            if not allow_aggregates:
                raise BindingError("aggregate not allowed in this clause")
            if expr.distinct:
                raise BindingError("DISTINCT aggregates are not supported")
            func = AggregateFunction[expr.func]
            argument = (
                None
                if expr.argument is None
                else self._bind_expr(expr.argument, scope, False)
            )
            if func != AggregateFunction.COUNT and argument is None:
                raise BindingError(f"{expr.func}(*) is only valid for COUNT")
            return AggregateCall(func, argument)
        raise BindingError(f"unsupported expression {expr!r}")

    # -- SELECT blocks -------------------------------------------------------

    def _bind_select(self, query: SelectQuery) -> LogicalPlan:
        plan = self._bind_from(query)
        scope = Scope(plan.fields)

        if query.where is not None:
            predicate = self._bind_expr(query.where, scope, allow_aggregates=False)
            if expression_dtype(predicate) != DataType.BOOLEAN:
                raise BindingError("WHERE predicate must be boolean")
            plan = LogicalFilter(plan, predicate)

        if query.star:
            if query.group_by or query.having:
                raise BindingError("SELECT * cannot be combined with GROUP BY")
            output_exprs: list[Expression] = [f.to_ref() for f in plan.fields]
            output_names = _output_names_for_star(plan.fields)
            plan = LogicalProject(plan, tuple(output_exprs), tuple(output_names))
            return self._apply_order_limit(plan, query, Scope(plan.fields))

        bound_items = [
            self._bind_expr(item.expr, scope, allow_aggregates=True)
            for item in query.items
        ]
        has_aggregates = (
            any(e.contains_aggregate() for e in bound_items)
            or bool(query.group_by)
            or query.having is not None
        )

        if not has_aggregates:
            names = _output_names(query, bound_items)
            plan = LogicalProject(plan, tuple(bound_items), tuple(names))
            return self._apply_order_limit(plan, query, Scope(plan.fields))

        # Aggregation query: bind group keys, collect aggregate calls.
        group_exprs = [
            self._bind_expr(g, scope, allow_aggregates=False) for g in query.group_by
        ]
        plan, group_refs = self._materialize_group_keys(plan, group_exprs)

        agg_calls: list[AggregateCall] = []

        def register(call: AggregateCall) -> ColumnRef:
            if call not in agg_calls:
                agg_calls.append(call)
            name = f"$agg{agg_calls.index(call)}"
            return ColumnRef(name, expression_dtype(call), None)

        having_expr: Expression | None = None
        if query.having is not None:
            having_expr = self._bind_expr(query.having, scope, allow_aggregates=True)

        # Output (and HAVING) expressions may repeat a computed GROUP BY
        # expression verbatim (e.g. SELECT YEAR(o_orderdate) ... GROUP BY
        # YEAR(o_orderdate)); rewrite such occurrences to the group key.
        group_key_map = list(zip(group_exprs, group_refs))
        rewritten_items = [
            _replace_aggregates(_replace_group_exprs(e, group_key_map), register)
            for e in bound_items
        ]
        rewritten_having = (
            _replace_aggregates(
                _replace_group_exprs(having_expr, group_key_map), register
            )
            if having_expr is not None
            else None
        )

        agg_names = tuple(f"$agg{i}" for i in range(len(agg_calls)))
        aggregate = LogicalAggregate(plan, tuple(group_refs), tuple(agg_calls), agg_names)

        # Validate: non-aggregate references must be group keys.
        group_names = {ref.name for ref in group_refs}
        allowed = group_names | set(agg_names)
        for item, original in zip(rewritten_items, query.items):
            bad = [r for r in item.references() if r not in allowed]
            if bad:
                raise BindingError(
                    f"output expression {original.expr} references non-grouped "
                    f"column(s) {bad}"
                )

        plan = aggregate
        if rewritten_having is not None:
            bad = [r for r in rewritten_having.references() if r not in allowed]
            if bad:
                raise BindingError(f"HAVING references non-grouped column(s) {bad}")
            plan = LogicalFilter(plan, rewritten_having)

        names = _output_names(query, bound_items)
        plan = LogicalProject(plan, tuple(rewritten_items), tuple(names))
        return self._apply_order_limit(plan, query, Scope(plan.fields))

    def _materialize_group_keys(
        self, plan: LogicalPlan, group_exprs: list[Expression]
    ) -> tuple[LogicalPlan, list[ColumnRef]]:
        """Ensure every group key is a plain column of ``plan``; computed
        keys (e.g. ``YEAR(o_orderdate)``) get a pre-projection."""
        computed = [
            (i, e) for i, e in enumerate(group_exprs) if not isinstance(e, ColumnRef)
        ]
        if not computed:
            return plan, [e for e in group_exprs if isinstance(e, ColumnRef)]
        exprs: list[Expression] = [f.to_ref() for f in plan.fields]
        names: list[str] = list(plan.field_names)
        refs: list[ColumnRef] = []
        for i, expr in enumerate(group_exprs):
            if isinstance(expr, ColumnRef):
                refs.append(expr)
            else:
                name = f"$gk{i}"
                exprs.append(expr)
                names.append(name)
                refs.append(ColumnRef(name, expression_dtype(expr), None))
        return LogicalProject(plan, tuple(exprs), tuple(names)), refs

    def _apply_order_limit(
        self, plan: LogicalPlan, query: SelectQuery, scope: Scope
    ) -> LogicalPlan:
        if not query.order_by and query.limit is None:
            return plan
        sort_keys: list[tuple[str, bool]] = []
        for item in query.order_by:
            if not isinstance(item.expr, AstColumn):
                raise BindingError(
                    "ORDER BY supports only output column names"
                )
            field = scope.resolve(item.expr.qualifier, item.expr.name)
            sort_keys.append((field.name, item.descending))
        return LogicalSort(plan, tuple(sort_keys), query.limit)


# -- helpers -----------------------------------------------------------------


def _bind_literal(value: object) -> Literal:
    if value is None:
        return Literal(None, DataType.VARCHAR)
    if isinstance(value, bool):
        return Literal(value, DataType.BOOLEAN)
    if isinstance(value, int):
        return Literal(value, DataType.INTEGER)
    if isinstance(value, float):
        return Literal(value, DataType.DECIMAL)
    if isinstance(value, str):
        return Literal(value, DataType.VARCHAR)
    if isinstance(value, datetime.date):
        return Literal(value, DataType.DATE)
    raise BindingError(f"unsupported literal {value!r}")


def _replace_group_exprs(
    expr: Expression, group_key_map: list[tuple[Expression, ColumnRef]]
) -> Expression:
    for group_expr, ref in group_key_map:
        if expr == group_expr:
            return ref
    if isinstance(expr, AggregateCall):
        return expr  # aggregate arguments see pre-grouping values
    kids = expr.children()
    if not kids:
        return expr
    new_kids = tuple(_replace_group_exprs(k, group_key_map) for k in kids)
    if new_kids == kids:
        return expr
    return expr.with_children(new_kids)


def _replace_aggregates(expr: Expression, register) -> Expression:
    if isinstance(expr, AggregateCall):
        return register(expr)
    kids = expr.children()
    if not kids:
        return expr
    new_kids = tuple(_replace_aggregates(k, register) for k in kids)
    if new_kids == kids:
        return expr
    return expr.with_children(new_kids)


def _unique_names(raw: list[str]) -> list[str]:
    seen: dict[str, int] = {}
    out: list[str] = []
    for name in raw:
        if name not in seen:
            seen[name] = 0
            out.append(name)
        else:
            seen[name] += 1
            out.append(f"{name}_{seen[name]}")
    return out


def _output_names(query: SelectQuery, bound_items: list[Expression]) -> list[str]:
    raw: list[str] = []
    for item, bound in zip(query.items, bound_items):
        if item.alias is not None:
            raw.append(item.alias.lower())
        elif isinstance(item.expr, AstColumn):
            raw.append(item.expr.name.lower())
        elif isinstance(item.expr, AstAggregate):
            arg = item.expr.argument
            if isinstance(arg, AstColumn):
                raw.append(f"{item.expr.func.lower()}_{arg.name.lower()}")
            else:
                raw.append(item.expr.func.lower())
        else:
            raw.append(f"col{len(raw)}")
    return _unique_names(raw)


def _output_names_for_star(fields: tuple[Field, ...]) -> list[str]:
    raw = [f.name.split(".")[-1] for f in fields]
    return _unique_names(raw)
