"""SQL frontend: lexer, parser, and binder."""

from .ast import SelectQuery
from .parser import parse_expression, parse_query
from .binder import Binder, Scope

__all__ = ["SelectQuery", "parse_expression", "parse_query", "Binder", "Scope"]
