"""Recursive-descent SQL parser for the engine's SQL subset.

Supported grammar (enough for the geo-adapted TPC-H workload of §7):

.. code-block:: text

    query     := SELECT item (',' item)* FROM from (',' from)*
                 [WHERE expr] [GROUP BY expr (',' expr)*] [HAVING expr]
                 [ORDER BY order (',' order)*] [LIMIT int]
    item      := '*' | expr [[AS] ident]
    from      := ident [[AS] ident]
               | from JOIN from ON expr          -- folded into WHERE
               | '(' query ')' [AS] ident        -- derived table
    expr      := boolean expression over comparisons, arithmetic,
                 [NOT] LIKE / IN / BETWEEN, IS [NOT] NULL,
                 scalar functions, aggregates, DATE 'yyyy-mm-dd'
"""

from __future__ import annotations

from ..datatypes import parse_date
from ..errors import SqlSyntaxError
from .ast import (
    AstAggregate,
    AstBetween,
    AstBinary,
    AstColumn,
    AstExpr,
    AstFunction,
    AstIn,
    AstIsNull,
    AstLike,
    AstLiteral,
    AstUnary,
    DerivedTableRef,
    FromItem,
    OrderItem,
    SelectItem,
    SelectQuery,
    TableRef,
)
from .lexer import TokenStream, TokenType, tokenize

_AGGREGATES = {"SUM", "COUNT", "AVG", "MIN", "MAX"}

#: Keywords that terminate an expression or clause and therefore cannot be
#: picked up as aliases.
_RESERVED = {
    "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "HAVING", "LIMIT",
    "AND", "OR", "NOT", "AS", "ON", "JOIN", "INNER", "IN", "LIKE",
    "BETWEEN", "IS", "NULL", "ASC", "DESC", "DATE", "DISTINCT", "UNION",
}


def parse_query(text: str) -> SelectQuery:
    """Parse ``text`` into a :class:`SelectQuery` AST."""
    stream = TokenStream(tokenize(text))
    query = _parse_select(stream)
    stream.expect_end()
    return query


def parse_expression(text: str) -> AstExpr:
    """Parse a standalone scalar/boolean expression (used by the policy
    parser for WHERE clauses)."""
    stream = TokenStream(tokenize(text))
    expr = _parse_expr(stream)
    stream.expect_end()
    return expr


def _parse_select(stream: TokenStream) -> SelectQuery:
    stream.expect_keyword("SELECT")
    stream.accept_keyword("DISTINCT")  # tolerated; engine treats as plain
    star = False
    items: list[SelectItem] = []
    if stream.at_symbol("*"):
        stream.advance()
        star = True
    else:
        items.append(_parse_select_item(stream))
        while stream.accept_symbol(","):
            items.append(_parse_select_item(stream))
    stream.expect_keyword("FROM")
    from_items: list[FromItem] = []
    join_conditions: list[AstExpr] = []
    from_items.append(_parse_from_item(stream))
    while True:
        if stream.accept_symbol(","):
            from_items.append(_parse_from_item(stream))
            continue
        if stream.at_keyword("JOIN", "INNER"):
            stream.accept_keyword("INNER")
            stream.expect_keyword("JOIN")
            from_items.append(_parse_from_item(stream))
            stream.expect_keyword("ON")
            join_conditions.append(_parse_expr(stream))
            continue
        break
    where: AstExpr | None = None
    if stream.accept_keyword("WHERE"):
        where = _parse_expr(stream)
    for condition in join_conditions:
        where = condition if where is None else AstBinary("AND", where, condition)
    group_by: list[AstExpr] = []
    if stream.accept_keyword("GROUP"):
        stream.expect_keyword("BY")
        group_by.append(_parse_expr(stream))
        while stream.accept_symbol(","):
            group_by.append(_parse_expr(stream))
    having: AstExpr | None = None
    if stream.accept_keyword("HAVING"):
        having = _parse_expr(stream)
    order_by: list[OrderItem] = []
    if stream.accept_keyword("ORDER"):
        stream.expect_keyword("BY")
        order_by.append(_parse_order_item(stream))
        while stream.accept_symbol(","):
            order_by.append(_parse_order_item(stream))
    limit: int | None = None
    if stream.accept_keyword("LIMIT"):
        token = stream.advance()
        if token.type != TokenType.NUMBER:
            raise SqlSyntaxError("LIMIT expects a number", token.position)
        limit = int(token.text)
    return SelectQuery(
        items=tuple(items),
        from_items=tuple(from_items),
        where=where,
        group_by=tuple(group_by),
        having=having,
        order_by=tuple(order_by),
        limit=limit,
        star=star,
    )


def _parse_select_item(stream: TokenStream) -> SelectItem:
    expr = _parse_expr(stream)
    alias: str | None = None
    if stream.accept_keyword("AS"):
        alias = stream.expect_ident().text
    elif stream.current.type == TokenType.IDENT and stream.current.upper not in _RESERVED:
        alias = stream.advance().text
    return SelectItem(expr, alias)


def _parse_from_item(stream: TokenStream) -> FromItem:
    if stream.accept_symbol("("):
        query = _parse_select(stream)
        stream.expect_symbol(")")
        stream.accept_keyword("AS")
        alias = stream.expect_ident().text
        return DerivedTableRef(query, alias)
    name = stream.expect_ident().text
    alias: str | None = None
    if stream.accept_keyword("AS"):
        alias = stream.expect_ident().text
    elif stream.current.type == TokenType.IDENT and stream.current.upper not in _RESERVED:
        alias = stream.advance().text
    return TableRef(name, alias)


def _parse_order_item(stream: TokenStream) -> OrderItem:
    expr = _parse_expr(stream)
    descending = False
    if stream.accept_keyword("DESC"):
        descending = True
    else:
        stream.accept_keyword("ASC")
    return OrderItem(expr, descending)


# -- expression grammar ------------------------------------------------------


def _parse_expr(stream: TokenStream) -> AstExpr:
    return _parse_or(stream)


def _parse_or(stream: TokenStream) -> AstExpr:
    left = _parse_and(stream)
    while stream.accept_keyword("OR"):
        right = _parse_and(stream)
        left = AstBinary("OR", left, right)
    return left


def _parse_and(stream: TokenStream) -> AstExpr:
    left = _parse_not(stream)
    while stream.accept_keyword("AND"):
        right = _parse_not(stream)
        left = AstBinary("AND", left, right)
    return left


def _parse_not(stream: TokenStream) -> AstExpr:
    if stream.accept_keyword("NOT"):
        return AstUnary("NOT", _parse_not(stream))
    return _parse_predicate(stream)


def _parse_predicate(stream: TokenStream) -> AstExpr:
    left = _parse_additive(stream)
    if stream.at_symbol("=", "<>", "!=", "<", "<=", ">", ">="):
        op = stream.advance().text
        if op == "!=":
            op = "<>"
        right = _parse_additive(stream)
        return AstBinary(op, left, right)
    negated = False
    if stream.at_keyword("NOT") and stream.peek(1).upper in ("LIKE", "IN", "BETWEEN"):
        stream.advance()
        negated = True
    if stream.accept_keyword("LIKE"):
        token = stream.advance()
        if token.type != TokenType.STRING:
            raise SqlSyntaxError("LIKE expects a string pattern", token.position)
        return AstLike(left, token.text, negated)
    if stream.accept_keyword("IN"):
        stream.expect_symbol("(")
        values = [_parse_literal(stream)]
        while stream.accept_symbol(","):
            values.append(_parse_literal(stream))
        stream.expect_symbol(")")
        return AstIn(left, tuple(values), negated)
    if stream.accept_keyword("BETWEEN"):
        low = _parse_additive(stream)
        stream.expect_keyword("AND")
        high = _parse_additive(stream)
        return AstBetween(left, low, high, negated)
    if stream.accept_keyword("IS"):
        is_negated = stream.accept_keyword("NOT")
        stream.expect_keyword("NULL")
        return AstIsNull(left, is_negated)
    return left


def _parse_additive(stream: TokenStream) -> AstExpr:
    left = _parse_multiplicative(stream)
    while stream.at_symbol("+", "-"):
        op = stream.advance().text
        right = _parse_multiplicative(stream)
        left = AstBinary(op, left, right)
    return left


def _parse_multiplicative(stream: TokenStream) -> AstExpr:
    left = _parse_unary(stream)
    while stream.at_symbol("*", "/"):
        op = stream.advance().text
        right = _parse_unary(stream)
        left = AstBinary(op, left, right)
    return left


def _parse_unary(stream: TokenStream) -> AstExpr:
    if stream.accept_symbol("-"):
        return AstUnary("-", _parse_unary(stream))
    return _parse_primary(stream)


def _parse_literal(stream: TokenStream) -> AstLiteral:
    token = stream.current
    if token.type == TokenType.NUMBER:
        stream.advance()
        value = float(token.text) if "." in token.text else int(token.text)
        return AstLiteral(value)
    if token.type == TokenType.STRING:
        stream.advance()
        return AstLiteral(token.text)
    if stream.at_keyword("DATE"):
        stream.advance()
        date_token = stream.advance()
        if date_token.type != TokenType.STRING:
            raise SqlSyntaxError("DATE expects a string literal", date_token.position)
        return AstLiteral(parse_date(date_token.text))
    if stream.accept_symbol("-"):
        inner = _parse_literal(stream)
        return AstLiteral(-inner.value)  # type: ignore[operator]
    raise SqlSyntaxError(f"expected literal, found {token.text!r}", token.position)


def _parse_primary(stream: TokenStream) -> AstExpr:
    token = stream.current
    if stream.accept_symbol("("):
        expr = _parse_expr(stream)
        stream.expect_symbol(")")
        return expr
    if token.type in (TokenType.NUMBER, TokenType.STRING):
        return _parse_literal(stream)
    if token.type == TokenType.IDENT:
        upper = token.upper
        if upper == "DATE" and stream.peek(1).type == TokenType.STRING:
            return _parse_literal(stream)
        if upper == "NULL":
            stream.advance()
            return AstLiteral(None)
        if upper in _AGGREGATES and stream.peek(1).text == "(":
            stream.advance()
            stream.expect_symbol("(")
            distinct = stream.accept_keyword("DISTINCT")
            if stream.accept_symbol("*"):
                argument: AstExpr | None = None
            else:
                argument = _parse_expr(stream)
            stream.expect_symbol(")")
            return AstAggregate(upper, argument, distinct)
        if stream.peek(1).text == "(" and stream.peek(1).type == TokenType.SYMBOL:
            name = stream.advance().text
            stream.expect_symbol("(")
            args: list[AstExpr] = []
            if not stream.at_symbol(")"):
                args.append(_parse_expr(stream))
                while stream.accept_symbol(","):
                    args.append(_parse_expr(stream))
            stream.expect_symbol(")")
            return AstFunction(name.upper(), tuple(args))
        # Plain or qualified column reference.
        first = stream.advance().text
        if stream.accept_symbol("."):
            second = stream.expect_ident().text
            return AstColumn(first, second)
        return AstColumn(None, first)
    raise SqlSyntaxError(f"unexpected token {token.text!r}", token.position)
