"""Relational type system.

The library stores data as plain Python values; this module defines the
small set of SQL types the engine understands, their Python carriers, and
size estimates used by the network cost model (``α + β · bytes``).

Supported types:

* ``INTEGER``  — Python ``int``
* ``DECIMAL``  — Python ``float`` (sufficient precision for a benchmark
  reproduction; exactness of money arithmetic is not under test)
* ``VARCHAR``  — Python ``str``
* ``DATE``     — Python ``datetime.date``
* ``BOOLEAN``  — Python ``bool`` (appears only as predicate results)
"""

from __future__ import annotations

import datetime
import enum
from typing import Any


class DataType(enum.Enum):
    """SQL data types supported by the engine."""

    INTEGER = "integer"
    DECIMAL = "decimal"
    VARCHAR = "varchar"
    DATE = "date"
    BOOLEAN = "boolean"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DataType.{self.name}"


#: Estimated on-the-wire width in bytes per value, by type.  VARCHAR uses a
#: default average width; callers with schema knowledge may override via
#: ``Column.width_bytes``.
_DEFAULT_WIDTH = {
    DataType.INTEGER: 8,
    DataType.DECIMAL: 8,
    DataType.VARCHAR: 24,
    DataType.DATE: 4,
    DataType.BOOLEAN: 1,
}

_PYTHON_CARRIERS = {
    DataType.INTEGER: int,
    DataType.DECIMAL: (int, float),
    DataType.VARCHAR: str,
    DataType.DATE: datetime.date,
    DataType.BOOLEAN: bool,
}


def default_width(dtype: DataType) -> int:
    """Return the default estimated byte width of one value of ``dtype``."""
    return _DEFAULT_WIDTH[dtype]


def is_numeric(dtype: DataType) -> bool:
    """Return True for types supporting arithmetic and SUM/AVG."""
    return dtype in (DataType.INTEGER, DataType.DECIMAL)


def is_comparable(left: DataType, right: DataType) -> bool:
    """Return True when values of the two types may be compared."""
    if left == right:
        return True
    return is_numeric(left) and is_numeric(right)


def value_matches(dtype: DataType, value: Any) -> bool:
    """Return True when ``value`` is a valid carrier for ``dtype``.

    ``None`` (SQL NULL) is valid for every type.  ``bool`` is excluded from
    the numeric types (Python bools are ints, but ``True`` is not a number
    in SQL).
    """
    if value is None:
        return True
    if isinstance(value, bool) and dtype != DataType.BOOLEAN:
        return False
    # datetime.datetime is a date subclass but not a SQL DATE carrier here.
    if dtype == DataType.DATE and isinstance(value, datetime.datetime):
        return False
    return isinstance(value, _PYTHON_CARRIERS[dtype])


def arithmetic_result_type(left: DataType, right: DataType) -> DataType:
    """Result type of ``left (+|-|*|/) right`` for numeric inputs."""
    if left == DataType.INTEGER and right == DataType.INTEGER:
        return DataType.INTEGER
    return DataType.DECIMAL


def parse_date(text: str) -> datetime.date:
    """Parse an ISO ``YYYY-MM-DD`` date literal."""
    return datetime.date.fromisoformat(text)
