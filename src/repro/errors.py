"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  The most important subclass
is :class:`NonCompliantQueryError`, raised when the compliance-based
optimizer cannot find any compliant execution plan for a query (the
"reject" arrow in Figure 2 of the paper).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SqlSyntaxError(ReproError):
    """Raised by the lexer/parser on malformed SQL text."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class BindingError(ReproError):
    """Raised when a parsed query references unknown tables/columns or is
    otherwise semantically invalid (e.g. a non-aggregated output column
    missing from GROUP BY)."""


class PolicySyntaxError(ReproError):
    """Raised on malformed policy-expression text."""


class CatalogError(ReproError):
    """Raised on invalid catalog definitions or lookups."""


class OptimizerError(ReproError):
    """Raised on internal optimizer failures (these indicate bugs)."""


class NonCompliantQueryError(ReproError):
    """Raised when no compliant query execution plan exists in the explored
    plan space for the given query and dataflow policies.

    Per the paper this does *not* always mean the query is illegal: the
    optimizer is sound but may be incomplete (Section 6.4).
    """


class ComplianceViolationError(ReproError):
    """Raised by the runtime compliance guard when a plan attempts to ship
    data to a location the dataflow policies forbid.  Seeing this error for
    a plan produced by the compliant optimizer would falsify Theorem 1."""


class ExecutionError(ReproError):
    """Raised on errors while executing a physical plan."""


class InvalidParameterError(ExecutionError):
    """A tuning knob (worker count, concurrency, queue depth, timeout,
    retry budget, ...) was given an out-of-range value.  Raised by the
    shared validators in :mod:`repro.validation` so every entry point —
    CLI flags, engine/scheduler/server constructors — fails with the
    same typed error and message shape."""


class UnknownLinkError(ExecutionError):
    """A transfer touched a ``(source, target)`` pair the network model
    does not describe, and the model was built in strict mode.

    Non-strict models silently substitute a pessimistic default link;
    strict models refuse, so a mis-deployed catalog surfaces as one
    typed error from the row and batch SHIP paths alike instead of a
    silently mispriced plan (or a bare ``KeyError`` from a lookup)."""

    def __init__(self, message: str, source: str, target: str) -> None:
        self.source = source
        self.target = target
        super().__init__(message)


class FaultError(ExecutionError):
    """Base class of injected-fault failures surfaced by the execution
    layer (site crashes, link failures, exhausted retries, timeouts).

    Genuine operator bugs raise plain :class:`ExecutionError` and always
    propagate; only ``FaultError`` subclasses are eligible for retry,
    failover, and graceful degradation to a partial-failure result."""


class TransferError(FaultError):
    """A cross-site transfer failed at a SHIP boundary.

    ``transient`` distinguishes a retriable blip (flaky link window)
    from a permanent condition (link down, retry budget exhausted)."""

    def __init__(
        self, message: str, source: str, target: str, transient: bool = False
    ) -> None:
        self.source = source
        self.target = target
        self.transient = transient
        super().__init__(message)


class CircuitOpenError(TransferError):
    """A transfer was refused because the per-link circuit breaker is
    open: recent attempts on this link failed at or above the breaker's
    failure-rate threshold, so the attempt fast-fails instead of
    burning retry backoff against a link that is known to be bad.

    Never transient — the retry loop must not hammer an open breaker;
    the scheduler instead consults failover immediately, and the
    breaker itself re-probes the link after its cooldown (half-open)."""

    def __init__(self, message: str, source: str, target: str) -> None:
        super().__init__(message, source=source, target=target, transient=False)


class SiteUnavailableError(FaultError):
    """A site needed by a fragment (its execution site, or the endpoint
    of one of its transfers) has crashed on the simulated clock."""

    def __init__(self, message: str, site: str) -> None:
        self.site = site
        super().__init__(message)


class ReplicaStaleError(FaultError):
    """A fragment was about to read a replica whose staleness — derived
    from its refresh schedule at the current simulated instant —
    violates the query's bound (or the active prefer-fresh policy).

    A :class:`FaultError` by design: the scheduler treats a stale
    replica exactly like an unavailable one and consults the failover
    planner for a fresher legal copy, so staleness demotions reuse the
    whole recovery machinery (validation, tracing, counters)."""

    def __init__(
        self,
        message: str,
        site: str,
        staleness: float,
        bound: float | None = None,
    ) -> None:
        self.site = site
        self.staleness = staleness
        self.bound = bound
        super().__init__(message)


class FragmentTimeoutError(FaultError):
    """A fragment's input delivery exceeded the per-fragment timeout on
    the simulated clock (typically after accumulating retry backoff)."""

    def __init__(self, message: str, fragment_index: int | None = None) -> None:
        self.fragment_index = fragment_index
        super().__init__(message)


class TraceFormatError(ReproError):
    """A serialized execution trace (JSONL) could not be parsed: a line
    is not valid JSON, an event has an unknown ``kind``, a required
    field is missing, or an embedded payload descriptor does not decode
    to a logical plan.  Raised by :mod:`repro.trace` readers so the
    ``repro audit`` CLI reports a malformed trace as one typed error
    (exit 1) instead of a stack trace — and never as a silently-passing
    audit."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class FreshnessAuditError(ReproError):
    """The auditor met freshness evidence it cannot independently
    verify: a trace carries ``staleness_at_read`` annotations or
    ``scan_read`` events, but the auditor was not given the catalog
    state (``--replicas`` and, for scheduled replicas, ``--refresh``)
    needed to re-derive staleness.  Fail-closed by design — an
    unverifiable freshness claim must never audit as fresh."""


class AdmissionRejected(ExecutionError):
    """The query server refused a request because its bounded waiting
    queue was full.  Deliberately *not* a :class:`FaultError`: rejection
    is a load-control decision, not a WAN fault, and must never be
    absorbed by retry or failover."""

    def __init__(self, message: str, queue_depth: int | None = None) -> None:
        self.queue_depth = queue_depth
        super().__init__(message)


class DeadlineExceeded(ExecutionError):
    """A query ran past its caller's deadline on the simulated clock
    and was cancelled cooperatively at a fragment boundary (or shed
    from the queue before it ever started).

    Not a :class:`FaultError`: a blown deadline must surface to the
    caller as a typed shed, never be "recovered" by failover into more
    work the caller no longer wants."""

    def __init__(
        self,
        message: str,
        deadline: float | None = None,
        at: float | None = None,
    ) -> None:
        self.deadline = deadline
        self.at = at
        super().__init__(message)
