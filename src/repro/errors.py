"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  The most important subclass
is :class:`NonCompliantQueryError`, raised when the compliance-based
optimizer cannot find any compliant execution plan for a query (the
"reject" arrow in Figure 2 of the paper).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SqlSyntaxError(ReproError):
    """Raised by the lexer/parser on malformed SQL text."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class BindingError(ReproError):
    """Raised when a parsed query references unknown tables/columns or is
    otherwise semantically invalid (e.g. a non-aggregated output column
    missing from GROUP BY)."""


class PolicySyntaxError(ReproError):
    """Raised on malformed policy-expression text."""


class CatalogError(ReproError):
    """Raised on invalid catalog definitions or lookups."""


class OptimizerError(ReproError):
    """Raised on internal optimizer failures (these indicate bugs)."""


class NonCompliantQueryError(ReproError):
    """Raised when no compliant query execution plan exists in the explored
    plan space for the given query and dataflow policies.

    Per the paper this does *not* always mean the query is illegal: the
    optimizer is sound but may be incomplete (Section 6.4).
    """


class ComplianceViolationError(ReproError):
    """Raised by the runtime compliance guard when a plan attempts to ship
    data to a location the dataflow policies forbid.  Seeing this error for
    a plan produced by the compliant optimizer would falsify Theorem 1."""


class ExecutionError(ReproError):
    """Raised on errors while executing a physical plan."""


class FaultError(ExecutionError):
    """Base class of injected-fault failures surfaced by the execution
    layer (site crashes, link failures, exhausted retries, timeouts).

    Genuine operator bugs raise plain :class:`ExecutionError` and always
    propagate; only ``FaultError`` subclasses are eligible for retry,
    failover, and graceful degradation to a partial-failure result."""


class TransferError(FaultError):
    """A cross-site transfer failed at a SHIP boundary.

    ``transient`` distinguishes a retriable blip (flaky link window)
    from a permanent condition (link down, retry budget exhausted)."""

    def __init__(
        self, message: str, source: str, target: str, transient: bool = False
    ) -> None:
        self.source = source
        self.target = target
        self.transient = transient
        super().__init__(message)


class SiteUnavailableError(FaultError):
    """A site needed by a fragment (its execution site, or the endpoint
    of one of its transfers) has crashed on the simulated clock."""

    def __init__(self, message: str, site: str) -> None:
        self.site = site
        super().__init__(message)


class FragmentTimeoutError(FaultError):
    """A fragment's input delivery exceeded the per-fragment timeout on
    the simulated clock (typically after accumulating retry backoff)."""

    def __init__(self, message: str, fragment_index: int | None = None) -> None:
        self.fragment_index = fragment_index
        super().__init__(message)
