"""Command-line interface: ``python -m repro <command>``.

A small operator console over the geo-distributed TPC-H deployment, the
curated policy sets, and both optimizers:

.. code-block:: text

    python -m repro explain  "SELECT ..."  [--set CR] [--traditional]
                                           [--traits] [--result-location L]
    python -m repro run      "SELECT ..."  [--set CR] [--scale 0.005]
                                           [--parallel] [--workers N]
                                           [--executor {row,batch}]
                                           [--explain-fragments]
                                           [--faults SPEC] [--retries N]
                                           [--fragment-timeout S]
                                           [--ship-chunk-rows N]
                                           [--ship-compression {none,auto}]
    python -m repro serve    workload.json [--set CR] [--scale 0.005]
                                           [--concurrency N] [--queue-depth N]
                                           [--deadline S] [--site-inflight N]
                                           [--faults SPEC] [--retries N]
                                           [--breaker-threshold F]
                                           [--breaker-cooldown S] [--no-breakers]
    python -m repro audit    "SELECT ..."  [--set CR]
    python -m repro audit    trace.jsonl   [--set CR | --policies FILE]
    python -m repro policies [--set CR]
    python -m repro queries                      # the six TPC-H queries

Named queries (``Q2``, ``Q3``, ``Q5``, ``Q8``, ``Q9``, ``Q10``) may be
used in place of SQL text (in ``serve`` workload files too).

``explain``, ``run``, ``serve``, and ``audit`` accept
``--replicas SPEC`` to register read replicas before planning
(``db1.customer@NorthAmerica;db2.orders@Europe+0.5`` — ``+S`` is the
replica's staleness bound in seconds); the optimizer reads each table
from the cheapest *compliant* copy and the failover planner fails
scans over to alternate compliant replicas before re-placement.
``--max-staleness S`` restricts planning (not failover) to replicas
no staler than ``S`` seconds.  ``audit`` needs the same ``--replicas``
spec the traced run used, so its independently rebuilt catalog can
re-confirm each replica read (an unregistered site is a
``displaced-scan``; a registered one the policies reject is a
``non-compliant-replica``).

``run`` and ``serve`` additionally accept ``--refresh SPEC`` to give
replicas per-site refresh schedules on the simulated clock
(``every:db.table@Site@PERIOD[+PHASE]``, with ``pause:`` / ``degrade:``
refresh faults and ``random:SEED``; grammar mirrors ``--faults``) and
``--staleness-policy {prefer-fresh,wait-for-refresh,read-stale,plan-only}``
to pick how stale replicas are handled at fragment admission.  Either
flag turns on *runtime* freshness checking (implies ``--parallel``):
every scan-bearing admission and failover decision re-derives each
replica's staleness at that instant and demotes replicas violating
``--max-staleness``.  ``audit`` accepts the same ``--refresh`` spec and
``--max-staleness`` bound so the auditor can re-derive per-read
freshness verdicts; a trace carrying staleness evidence audited without
them fails closed.

``run`` and ``serve`` accept ``--trace FILE`` to record every optimizer
decision, SHIP attempt, and admission event as deterministic JSONL;
``audit`` with an existing trace file replays it against the policy set
through the independent compliance auditor (docs/OBSERVABILITY.md).

Exit codes: 0 success, 1 error, 2 query rejected as non-compliant,
3 injected faults degraded the query to a partial-failure result (or,
for ``serve``, degraded at least one workload query), 4 the trace audit
found at least one compliance violation.
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import nullcontext

from .catalog import FreshnessTracker, apply_refresh_spec, parse_replica_spec
from .errors import NonCompliantQueryError, ReproError
from .execution import (
    COMPRESSION_MODES,
    DEFAULT_CHUNK_ROWS,
    FRESHNESS_MODES,
    ExecutionEngine,
    FreshnessPolicy,
    RetryPolicy,
    ShipConfig,
    explain_fragments,
    fragment_plan,
    parse_fault_spec,
)
from .optimizer import (
    CompliantOptimizer,
    TraditionalOptimizer,
    check_compliance,
)
from .plan import explain_annotated, explain_physical
from .policy import PolicyEvaluator, describe_local_query
from .policy.catalog import PolicyCatalog
from .server import BreakerConfig, BreakerRegistry, QueryServer, load_workload
from .sql import Binder
from .trace import ComplianceAuditor, TraceRecorder, tracing
from .tpch import (
    LOCATIONS,
    QUERIES,
    build_benchmark,
    build_catalog,
    curated_policies,
    default_network,
)


def _resolve_sql(text: str) -> str:
    if text.upper() in QUERIES:
        return QUERIES[text.upper()]
    return text


def _apply_replicas(catalog, spec: str | None) -> None:
    """Register the replicas of a ``--replicas`` spec on ``catalog``."""
    if spec is None:
        return
    for replica in parse_replica_spec(spec):
        catalog.add_replica(
            replica.database,
            replica.table,
            replica.site,
            staleness_seconds=replica.staleness_seconds,
        )


def _build_freshness(catalog, args: argparse.Namespace) -> FreshnessPolicy | None:
    """Build the runtime freshness policy when ``--refresh`` or
    ``--staleness-policy`` was given (``None`` otherwise: runtime
    freshness checking stays off and replica behavior is unchanged)."""
    if args.refresh is None and args.staleness_policy is None:
        return None
    if args.refresh is not None:
        apply_refresh_spec(catalog, args.refresh)
    return FreshnessPolicy(
        FreshnessTracker(catalog),
        mode=args.staleness_policy or "prefer-fresh",
        max_staleness=args.max_staleness,
    )


def _build_ship(args: argparse.Namespace) -> ShipConfig:
    """Build the SHIP wire format from ``--ship-chunk-rows`` /
    ``--ship-compression`` (0 chunk rows = monolithic transfers)."""
    chunk_rows = args.ship_chunk_rows if args.ship_chunk_rows > 0 else None
    return ShipConfig(chunk_rows=chunk_rows, compression=args.ship_compression)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compliant geo-distributed query processing (SIGMOD '21 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, with_query: bool = True) -> None:
        if with_query:
            p.add_argument("query", help="SQL text or a named TPC-H query (Q2..Q10)")
        p.add_argument(
            "--set",
            dest="policy_set",
            default="CR",
            choices=["T", "C", "CR", "CR+A"],
            help="curated policy-expression set (default: CR)",
        )

    def add_replicas(p: argparse.ArgumentParser, planning: bool = True) -> None:
        p.add_argument(
            "--replicas",
            default=None,
            metavar="SPEC",
            help="register read replicas before planning; ';'-separated "
            "entries db.table@Site[+STALENESS_SECONDS]",
        )
        if planning:
            p.add_argument(
                "--max-staleness",
                type=float,
                default=None,
                metavar="SECONDS",
                help="only plan scans on replicas whose declared staleness "
                "bound is at most SECONDS (default: any replica)",
            )

    def add_freshness(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--refresh",
            default=None,
            metavar="SPEC",
            help="give replicas refresh schedules on the simulated clock "
            "(implies --parallel); ';'-separated events: "
            "every:db.table@SITE@PERIOD[+PHASE], "
            "pause:db.table@SITE@T[+DUR], "
            "degrade:db.table@SITE@T[+DUR]xFACTOR, random:SEED",
        )
        p.add_argument(
            "--staleness-policy",
            default=None,
            choices=list(FRESHNESS_MODES),
            help="how stale replicas are handled at fragment admission "
            "(implies --parallel; default with --refresh: prefer-fresh). "
            "'plan-only' records staleness without enforcing the bound",
        )

    def add_ship(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--ship-chunk-rows",
            type=int,
            default=DEFAULT_CHUNK_ROWS,
            metavar="N",
            help="stream every SHIP as fixed-size chunks of N rows so "
            "consumer fragments start on first-chunk arrival "
            f"(default {DEFAULT_CHUNK_ROWS}; 0 = monolithic transfers)",
        )
        p.add_argument(
            "--ship-compression",
            default="auto",
            choices=list(COMPRESSION_MODES),
            help="per-column wire compression: 'auto' picks the cheapest "
            "of plain/dict/RLE per column (default), 'none' ships "
            "plain (billed bytes = logical bytes)",
        )

    explain = sub.add_parser("explain", help="optimize and print the plan")
    add_common(explain)
    add_replicas(explain)
    explain.add_argument(
        "--traditional", action="store_true", help="use the policy-unaware baseline"
    )
    explain.add_argument(
        "--traits", action="store_true", help="also print the annotated plan (E/S traits)"
    )
    explain.add_argument(
        "--result-location", default=None, help="deliver the result to this location"
    )

    run = sub.add_parser("run", help="optimize, execute on generated data, print rows")
    add_common(run)
    add_replicas(run)
    add_freshness(run)
    add_ship(run)
    run.add_argument(
        "--scale", type=float, default=0.005, help="TPC-H data scale (default 0.005)"
    )
    run.add_argument(
        "--result-location", default=None, help="deliver the result to this location"
    )
    run.add_argument("--limit", type=int, default=20, help="print at most N rows")
    run.add_argument(
        "--parallel",
        action="store_true",
        help="execute plan fragments concurrently and report the simulated "
        "critical-path makespan alongside the shipping-time sum",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="thread-pool size for --parallel (default: min(8, #cores))",
    )
    run.add_argument(
        "--executor",
        default="row",
        choices=["row", "batch"],
        help="operator backend: tuple-at-a-time 'row' (default) or the "
        "columnar 'batch' executor with compiled batch kernels "
        "(row-identical results; see docs/EXECUTION.md)",
    )
    run.add_argument(
        "--explain-fragments",
        action="store_true",
        help="print the per-site fragment DAG (and, with --parallel, "
        "per-fragment simulated timings) before the rows",
    )
    run.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="inject WAN faults (implies --parallel); ';'-separated events: "
        "crash:SITE@T, drop:SRC->DST@T[+DUR], slow:SRC->DST@T[+DUR]xFACTOR, "
        "flaky:SRC->DST@T+DUR, random:SEED",
    )
    run.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="max retries per transfer under --faults (default 3)",
    )
    run.add_argument(
        "--fragment-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="cap each fragment's input-delivery span on the simulated "
        "clock; exceeding it triggers failover (default: no cap)",
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record optimizer decisions and every SHIP attempt as "
        "deterministic JSONL to FILE (audit it with 'repro audit FILE')",
    )
    run.add_argument(
        "--plan-cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="cache optimized plans keyed by (query shape, parameter "
        "signature, policy version); repeated templates skip both "
        "optimizer phases (default: on; --no-plan-cache disables)",
    )

    serve = sub.add_parser(
        "serve",
        help="replay a JSON workload file through the concurrent query "
        "server (admission control, circuit breakers, load shedding)",
    )
    serve.add_argument(
        "workload",
        help="JSON workload file: a list of requests with query/arrival/"
        "deadline/priority fields (query = SQL or Q2..Q10)",
    )
    serve.add_argument(
        "--set",
        dest="policy_set",
        default="CR",
        choices=["T", "C", "CR", "CR+A"],
        help="curated policy-expression set (default: CR)",
    )
    add_replicas(serve)
    add_freshness(serve)
    add_ship(serve)
    serve.add_argument(
        "--scale", type=float, default=0.005, help="TPC-H data scale (default 0.005)"
    )
    serve.add_argument(
        "--concurrency",
        type=int,
        default=4,
        metavar="N",
        help="queries in service at once (default 4)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        metavar="N",
        help="bounded waiting-queue size; arrivals beyond it are "
        "rejected with a typed AdmissionRejected (default 16)",
    )
    serve.add_argument(
        "--site-inflight",
        type=int,
        default=None,
        metavar="N",
        help="per-site in-flight fragment limit (default: unlimited)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-query deadline in simulated seconds after "
        "arrival; past-deadline queries are shed (default: none)",
    )
    serve.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="inject WAN faults; same grammar as 'run --faults'",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="max retries per transfer under --faults (default 3)",
    )
    serve.add_argument(
        "--fragment-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="cap each fragment's input-delivery span (default: no cap)",
    )
    serve.add_argument(
        "--breaker-threshold",
        type=float,
        default=0.5,
        metavar="FRACTION",
        help="failure fraction of the rolling window that opens a "
        "per-link circuit breaker (default 0.5)",
    )
    serve.add_argument(
        "--breaker-cooldown",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="simulated seconds an open breaker waits before "
        "half-opening (default 0.5)",
    )
    serve.add_argument(
        "--no-breakers",
        action="store_true",
        help="disable circuit breakers (every transfer retries even on "
        "a link that keeps failing)",
    )
    serve.add_argument(
        "--executor",
        default="row",
        choices=["row", "batch"],
        help="operator backend (default: row)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="thread-pool size per query (default: min(8, #cores))",
    )
    serve.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record admission decisions and every SHIP attempt of the "
        "whole workload as deterministic JSONL to FILE",
    )
    serve.add_argument(
        "--plan-cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="serve repeated query templates from the compliant plan "
        "cache, skipping the optimizer on hot hits (default: on; "
        "--no-plan-cache falls back to per-SQL-text memoization)",
    )

    audit = sub.add_parser(
        "audit",
        help="audit a recorded execution trace against the policy set "
        "(exit 4 on violation), or print the legal shipping "
        "destinations of a (single-database) query",
    )
    audit.add_argument(
        "query",
        metavar="QUERY_OR_TRACE",
        help="a JSONL trace file recorded with --trace, or SQL text / a "
        "named TPC-H query (Q2..Q10)",
    )
    audit.add_argument(
        "--set",
        dest="policy_set",
        default="CR",
        choices=["T", "C", "CR", "CR+A"],
        help="curated policy-expression set (default: CR)",
    )
    audit.add_argument(
        "--policies",
        default=None,
        metavar="FILE",
        help="audit against policy expressions from FILE (one per line, "
        "'#' comments) instead of a curated --set",
    )
    add_replicas(audit, planning=False)
    audit.add_argument(
        "--refresh",
        default=None,
        metavar="SPEC",
        help="the --refresh spec the traced run used, so the auditor can "
        "independently re-derive each replica read's staleness",
    )
    audit.add_argument(
        "--max-staleness",
        type=float,
        default=None,
        metavar="SECONDS",
        help="staleness bound for freshness verdicts on traces that "
        "carry no per-query bound (default: reads are never "
        "bound-violated, only fresh or stale)",
    )

    policies = sub.add_parser("policies", help="print a curated policy set")
    add_common(policies, with_query=False)

    sub.add_parser("queries", help="list the six TPC-H evaluation queries")
    return parser


def _cmd_explain(args: argparse.Namespace) -> int:
    catalog = build_catalog(scale=1.0)
    _apply_replicas(catalog, args.replicas)
    network = default_network()
    sql = _resolve_sql(args.query)
    policy_catalog = curated_policies(catalog, args.policy_set)
    if args.traditional:
        optimizer = TraditionalOptimizer(catalog, network)
        result = optimizer.optimize(sql, result_location=args.result_location)
        evaluator = PolicyEvaluator(policy_catalog)
        violations = check_compliance(result.plan, evaluator)
    else:
        optimizer = CompliantOptimizer(
            catalog, policy_catalog, network, max_staleness=args.max_staleness
        )
        result = optimizer.optimize(sql, result_location=args.result_location)
        violations = []
    print(explain_physical(result.plan, show_rows=True))
    if args.traits:
        print("\nAnnotated plan (phase 1):")
        print(explain_annotated(result.annotate.root))
    print(
        f"\noptimization: {result.phase1_seconds * 1e3:.1f} ms (annotator) + "
        f"{result.phase2_seconds * 1e3:.1f} ms (site selector); "
        f"{result.annotate.group_count} memo groups / "
        f"{result.annotate.expression_count} expressions"
    )
    if args.traditional:
        print(f"compliant under set {args.policy_set}: {not violations}")
        for violation in violations:
            print("  violation:", violation)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    catalog, database = build_benchmark(scale=args.scale, stats_scale=1.0)
    _apply_replicas(catalog, args.replicas)
    freshness = _build_freshness(catalog, args)
    network = default_network()
    policy_catalog = curated_policies(catalog, args.policy_set)
    optimizer = CompliantOptimizer(
        catalog,
        policy_catalog,
        network,
        plan_cache=args.plan_cache,
        max_staleness=args.max_staleness,
    )
    recorder = TraceRecorder() if args.trace is not None else None
    with tracing(recorder) if recorder is not None else nullcontext():
        result = optimizer.optimize(
            _resolve_sql(args.query), result_location=args.result_location
        )
        if args.explain_fragments:
            print(explain_fragments(fragment_plan(result.plan)))
            print()
        faults = None
        retry_policy = None
        if args.faults is not None:
            faults = parse_fault_spec(args.faults, locations=catalog.locations)
            parallel = True  # faults live on the fragment scheduler's clock
        else:
            # Freshness checks also live on the simulated clock.
            parallel = args.parallel or freshness is not None
        if args.retries is not None or args.fragment_timeout is not None:
            defaults = RetryPolicy()
            retry_policy = RetryPolicy(
                max_retries=defaults.max_retries
                if args.retries is None
                else args.retries,
                fragment_timeout=args.fragment_timeout,
            )
        engine = ExecutionEngine(
            database,
            network,
            policy_guard=optimizer.evaluator,
            parallel=parallel,
            max_workers=args.workers,
            faults=faults,
            retry_policy=retry_policy,
            executor=args.executor,
            freshness=freshness,
            ship=_build_ship(args),
        )
        # Pass the whole OptimizationResult: a store-time-validated plan
        # skips the engine's redundant guard re-check.
        output = engine.execute(result)
    if recorder is not None:
        events = recorder.write(args.trace)
        print(f"trace: {events} events -> {args.trace}", file=sys.stderr)
    print("\t".join(output.columns))
    for row in output.rows[: args.limit]:
        print("\t".join(str(v) for v in row))
    if len(output.rows) > args.limit:
        print(f"... ({len(output.rows)} rows total)")
    summary = (
        f"\n{output.metrics.total_rows_shipped} rows / "
        f"{output.metrics.total_bytes_shipped} bytes shipped across borders "
        f"({output.simulated_cost:.3f} s simulated transfer time)"
    )
    if parallel:
        summary += f"; {output.makespan_seconds:.3f} s simulated makespan"
    wire_bytes = output.metrics.total_wire_bytes_shipped
    if wire_bytes != output.metrics.total_bytes_shipped:
        summary += (
            f"; {wire_bytes} wire bytes in "
            f"{output.metrics.total_chunks_shipped} chunks"
        )
    print(summary, file=sys.stderr)
    if faults is not None:
        print(f"injected faults: {faults}", file=sys.stderr)
        print(
            f"{output.metrics.transfer_attempts} transfer attempts over "
            f"{len(output.metrics.ships)} transfers; "
            f"{output.metrics.retry_wait_seconds:.3f} s simulated retry backoff",
            file=sys.stderr,
        )
        for recovery in output.metrics.recoveries:
            validated = "validated" if recovery.validated else "unvalidated"
            print(
                f"failover ({recovery.kind}): f{recovery.fragment_index} "
                f"{recovery.from_site} -> {recovery.to_site} at "
                f"t={recovery.at_seconds:.3f}s ({validated}; {recovery.reason})",
                file=sys.stderr,
            )
        if output.metrics.replica_failovers:
            print(
                f"replica failovers: {output.metrics.replica_failovers} "
                f"({output.metrics.replica_switches_breaker} breaker-steered, "
                f"{output.metrics.partial_failures_avoided} partial failures "
                f"avoided)",
                file=sys.stderr,
            )
    if freshness is not None:
        bound = (
            f", bound {freshness.max_staleness:g}s"
            if freshness.max_staleness is not None
            else ""
        )
        print(
            f"freshness ({freshness.mode}{bound}): "
            f"{len(output.metrics.scan_reads)} replica reads, "
            f"{output.metrics.stale_reads} stale, "
            f"{output.metrics.refresh_waits} refresh waits "
            f"({output.metrics.refresh_wait_seconds:.3f}s waited), "
            f"{output.metrics.freshness_demotions} freshness demotions",
            file=sys.stderr,
        )
    if args.explain_fragments and parallel:
        print("\nfragment timings (simulated WAN clock):", file=sys.stderr)
        for record in output.metrics.fragments:
            print(
                f"  f{record.index} @ {record.location:14s} "
                f"rows={record.rows_out:<8d} "
                f"compute={record.compute_seconds * 1e3:7.1f} ms  "
                f"sim [{record.sim_start_seconds:.3f}s "
                f"-> {record.sim_finish_seconds:.3f}s]",
                file=sys.stderr,
            )
    if output.partial_failure is not None:
        print(f"PARTIAL FAILURE: {output.partial_failure}", file=sys.stderr)
        return 3
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    requests = load_workload(args.workload, resolve=_resolve_sql)
    catalog, database = build_benchmark(scale=args.scale, stats_scale=1.0)
    _apply_replicas(catalog, args.replicas)
    freshness = _build_freshness(catalog, args)
    network = default_network()
    policy_catalog = curated_policies(catalog, args.policy_set)
    optimizer = CompliantOptimizer(
        catalog,
        policy_catalog,
        network,
        plan_cache=args.plan_cache,
        max_staleness=args.max_staleness,
    )
    faults = (
        parse_fault_spec(args.faults, locations=catalog.locations)
        if args.faults is not None
        else None
    )
    retry_policy = None
    if args.retries is not None or args.fragment_timeout is not None:
        defaults = RetryPolicy()
        retry_policy = RetryPolicy(
            max_retries=defaults.max_retries if args.retries is None else args.retries,
            fragment_timeout=args.fragment_timeout,
        )
    breakers = None
    if not args.no_breakers:
        breakers = BreakerRegistry(
            BreakerConfig(
                failure_threshold=args.breaker_threshold,
                cooldown=args.breaker_cooldown,
            )
        )
    server = QueryServer(
        database,
        network,
        optimizer=optimizer,
        evaluator=optimizer.evaluator,
        concurrency=args.concurrency,
        queue_depth=args.queue_depth,
        site_inflight=args.site_inflight,
        default_deadline=args.deadline,
        breakers=breakers,
        faults=faults,
        retry_policy=retry_policy,
        executor=args.executor,
        max_workers=args.workers,
        freshness=freshness,
        ship=_build_ship(args),
    )
    recorder = TraceRecorder() if args.trace is not None else None
    with tracing(recorder) if recorder is not None else nullcontext():
        result = server.serve(requests)
    if recorder is not None:
        events = recorder.write(args.trace)
        print(f"trace: {events} events -> {args.trace}", file=sys.stderr)
    for outcome in result.outcomes:
        print(outcome.describe())
    print(f"\n{result.metrics.summary()}", file=sys.stderr)
    if optimizer.plan_cache is not None:
        print(
            f"plan cache: {optimizer.plan_cache.stats.summary()}",
            file=sys.stderr,
        )
    if faults is not None:
        print(f"injected faults: {faults}", file=sys.stderr)
    if breakers is not None and result.metrics.breaker_states:
        states = ", ".join(
            f"{link}={state}" for link, state in result.metrics.breaker_states.items()
        )
        print(f"breakers: {states}", file=sys.stderr)
    if not result.metrics.reconciles():  # pragma: no cover - defensive
        print("error: outcome buckets do not reconcile", file=sys.stderr)
        return 1
    return 3 if result.metrics.partial else 0


def _load_policy_file(catalog, path: str) -> PolicyCatalog:
    policies = PolicyCatalog(catalog)
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            policies.add_text(text)
    return policies


def _cmd_audit(args: argparse.Namespace) -> int:
    catalog = build_catalog(scale=1.0)
    # The audit catalog is rebuilt independently of the traced run, so
    # the replicas the run planned against must be re-registered here —
    # a replica read the auditor does not know about is, correctly, a
    # displaced-scan violation.
    _apply_replicas(catalog, args.replicas)
    if os.path.isfile(args.query):
        # Trace-audit mode: replay a recorded execution against the
        # policy set through the independent compliance auditor.
        if args.policies is not None:
            policy_catalog = _load_policy_file(catalog, args.policies)
        else:
            policy_catalog = curated_policies(catalog, args.policy_set)
        # Freshness verdicts need an audit-side tracker mirroring the
        # traced run's replica/refresh configuration.  Built whenever
        # replicas are declared; a trace carrying staleness evidence
        # audited without one fails closed (FreshnessAuditError).
        if args.refresh is not None:
            apply_refresh_spec(catalog, args.refresh)
        tracker = (
            FreshnessTracker(catalog)
            if args.refresh is not None or args.replicas is not None
            else None
        )
        report = ComplianceAuditor(
            policy_catalog,
            freshness=tracker,
            max_staleness=args.max_staleness,
        ).audit_file(args.query)
        print(report.summary())
        for violation in report.violations:
            print(f"  VIOLATION: {violation}")
        return 4 if report.violations else 0
    if args.policies is not None:
        print(
            "error: --policies requires a trace file (the query form "
            "audits against a curated --set)",
            file=sys.stderr,
        )
        return 1
    policy_catalog = curated_policies(catalog, args.policy_set)
    plan = Binder(catalog).bind_sql(_resolve_sql(args.query))
    local_query = describe_local_query(plan)
    destinations = PolicyEvaluator(policy_catalog).evaluate(local_query)
    print(f"legal destinations under set {args.policy_set}:")
    for location in LOCATIONS:
        marker = "ALLOWED" if location in destinations else "denied"
        print(f"  {location:14s} {marker}")
    return 0


def _cmd_policies(args: argparse.Namespace) -> int:
    catalog = build_catalog(scale=1.0)
    policy_catalog = curated_policies(catalog, args.policy_set)
    for expression in policy_catalog.expressions:
        print(expression)
    return 0


def _cmd_queries(_args: argparse.Namespace) -> int:
    for name, sql in QUERIES.items():
        print(f"-- {name}")
        print(sql.strip())
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "explain": _cmd_explain,
        "run": _cmd_run,
        "serve": _cmd_serve,
        "audit": _cmd_audit,
        "policies": _cmd_policies,
        "queries": _cmd_queries,
    }
    try:
        return handlers[args.command](args)
    except NonCompliantQueryError as error:
        print(f"REJECTED: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
