"""Table and column statistics for cardinality estimation.

The optimizer's cost model (paper §6, "traditional cost model ... cost
functions based on input cardinalities") uses classic System-R style
estimation: row counts, per-column distinct counts, and min/max bounds.
Statistics can be computed exactly from in-memory data via
:func:`stats_from_rows` or synthesized from schema knowledge (the TPC-H
module does this for its generated tables).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from .schema import TableSchema


@dataclass
class ColumnStats:
    """Statistics of one column."""

    distinct_count: int = 1
    min_value: Any = None
    max_value: Any = None
    null_fraction: float = 0.0


@dataclass
class TableStats:
    """Statistics of one table."""

    row_count: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats:
        """Stats for ``name``; a permissive default when unknown."""
        stats = self.columns.get(name)
        if stats is None:
            stats = ColumnStats(distinct_count=max(1, self.row_count // 10 or 1))
        return stats


def stats_from_rows(schema: TableSchema, rows: Sequence[Sequence[Any]]) -> TableStats:
    """Compute exact statistics from in-memory rows."""
    column_stats: dict[str, ColumnStats] = {}
    n = len(rows)
    for i, col in enumerate(schema.columns):
        values = [row[i] for row in rows]
        non_null = [v for v in values if v is not None]
        distinct = len(set(non_null)) if non_null else 0
        stats = ColumnStats(
            distinct_count=max(1, distinct),
            min_value=min(non_null) if non_null else None,
            max_value=max(non_null) if non_null else None,
            null_fraction=(n - len(non_null)) / n if n else 0.0,
        )
        column_stats[col.name] = stats
    return TableStats(row_count=n, columns=column_stats)


def uniform_stats(
    schema: TableSchema,
    row_count: int,
    distinct_overrides: dict[str, int] | None = None,
) -> TableStats:
    """Synthesize statistics assuming uniform value distributions.

    Key columns get ``row_count`` distinct values; other columns default to
    ``max(1, row_count // 10)`` unless overridden.
    """
    overrides = distinct_overrides or {}
    key_columns = set(schema.primary_key)
    column_stats: dict[str, ColumnStats] = {}
    for col in schema.columns:
        if col.name in overrides:
            distinct = overrides[col.name]
        elif col.name in key_columns and len(key_columns) == 1:
            distinct = row_count
        else:
            distinct = max(1, row_count // 10)
        column_stats[col.name] = ColumnStats(distinct_count=max(1, distinct))
    return TableStats(row_count=row_count, columns=column_stats)
