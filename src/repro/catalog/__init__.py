"""Geo-distributed schema catalog and statistics."""

from .schema import Column, ForeignKey, TableSchema
from .statistics import ColumnStats, TableStats, stats_from_rows, uniform_stats
from .catalog import Catalog, Database, GlobalTable, StoredTable
from .freshness import (
    FRESHNESS_EPS,
    FreshnessTracker,
    RefreshDegrade,
    RefreshPause,
    RefreshSchedule,
    apply_refresh_spec,
    parse_refresh_spec,
    random_refresh_schedules,
)
from .replicas import Replica, parse_replica_spec

__all__ = [
    "FRESHNESS_EPS",
    "FreshnessTracker",
    "RefreshDegrade",
    "RefreshPause",
    "RefreshSchedule",
    "apply_refresh_spec",
    "parse_refresh_spec",
    "random_refresh_schedules",
    "Replica",
    "parse_replica_spec",
    "Column",
    "ForeignKey",
    "TableSchema",
    "ColumnStats",
    "TableStats",
    "stats_from_rows",
    "uniform_stats",
    "Catalog",
    "Database",
    "GlobalTable",
    "StoredTable",
]
