"""Geo-distributed schema catalog and statistics."""

from .schema import Column, ForeignKey, TableSchema
from .statistics import ColumnStats, TableStats, stats_from_rows, uniform_stats
from .catalog import Catalog, Database, GlobalTable, StoredTable
from .replicas import Replica, parse_replica_spec

__all__ = [
    "Replica",
    "parse_replica_spec",
    "Column",
    "ForeignKey",
    "TableSchema",
    "ColumnStats",
    "TableStats",
    "stats_from_rows",
    "uniform_stats",
    "Catalog",
    "Database",
    "GlobalTable",
    "StoredTable",
]
