"""Geo-distributed catalog: databases, stored tables, and GAV mappings.

The model follows §3 of the paper: the distributed database is a set of
local databases, each tied to one location (``D_l``), and the
geo-distributed *global schema* is the union of all local schemas.  A
global table is either stored whole in one database or horizontally
fragmented across several databases; fragmented tables use simple GAV
mappings (global table = union of fragments), which is how §7.5 distributes
Customer and Orders over locations L1–L5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CatalogError
from .freshness import RefreshSchedule
from .replicas import Replica
from .schema import TableSchema
from .statistics import TableStats, uniform_stats


@dataclass
class Database:
    """One local database, tied to a single location."""

    name: str
    location: str


@dataclass
class StoredTable:
    """One stored table (or table fragment) inside a local database."""

    database: str
    location: str
    schema: TableSchema
    stats: TableStats = field(default_factory=TableStats)

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def qualified_name(self) -> str:
        return f"{self.database}.{self.schema.name}"


@dataclass
class GlobalTable:
    """A table of the global schema mapped (GAV) onto stored fragments.

    A non-fragmented table has exactly one fragment.  All fragments share
    the global table's schema.
    """

    name: str
    schema: TableSchema
    fragments: list[StoredTable]

    @property
    def is_fragmented(self) -> bool:
        return len(self.fragments) > 1

    @property
    def total_rows(self) -> int:
        return sum(f.stats.row_count for f in self.fragments)


class Catalog:
    """The geo-distributed schema catalog used by binder and optimizer."""

    def __init__(self) -> None:
        self._databases: dict[str, Database] = {}
        self._tables: dict[str, GlobalTable] = {}
        #: Read-only alternate placements per stored fragment, keyed by
        #: ``(database, table)``.  See :mod:`.replicas`.
        self._replicas: dict[tuple[str, str], list[Replica]] = {}
        #: Per-replica refresh schedules, keyed by
        #: ``(database, table, site)``.  See :mod:`.freshness`.
        self._refresh: dict[tuple[str, str, str], RefreshSchedule] = {}
        #: Monotone catalog version, bumped on every replica-set change.
        #: Mirrors ``PolicyCatalog.version``: the plan cache and the
        #: replica resolver key derived state on it so cached located
        #: plans never pin a scan to a replica that has been dropped.
        self._version = 0

    # -- databases ---------------------------------------------------------

    def add_database(self, name: str, location: str) -> Database:
        if name in self._databases:
            raise CatalogError(f"database {name!r} already exists")
        db = Database(name, location)
        self._databases[name] = db
        return db

    def database(self, name: str) -> Database:
        try:
            return self._databases[name]
        except KeyError:
            raise CatalogError(f"unknown database {name!r}") from None

    @property
    def databases(self) -> list[Database]:
        return list(self._databases.values())

    @property
    def locations(self) -> list[str]:
        """All distinct locations hosting a database, in insertion order."""
        seen: dict[str, None] = {}
        for db in self._databases.values():
            seen.setdefault(db.location, None)
        return list(seen)

    # -- tables ------------------------------------------------------------

    def add_table(
        self,
        database: str,
        schema: TableSchema,
        stats: TableStats | None = None,
        row_count: int | None = None,
    ) -> GlobalTable:
        """Register a (non-fragmented) global table stored in ``database``."""
        db = self.database(database)
        key = schema.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        if stats is None:
            stats = uniform_stats(schema, row_count or 0)
        stored = StoredTable(db.name, db.location, schema, stats)
        table = GlobalTable(schema.name, schema, [stored])
        self._tables[key] = table
        return table

    def add_fragmented_table(
        self,
        schema: TableSchema,
        fragments: list[tuple[str, TableStats]],
    ) -> GlobalTable:
        """Register a global table fragmented over several databases.

        ``fragments`` is a list of ``(database_name, fragment_stats)``.
        """
        key = schema.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        if not fragments:
            raise CatalogError(f"table {schema.name!r} needs at least one fragment")
        stored = []
        for db_name, stats in fragments:
            db = self.database(db_name)
            stored.append(StoredTable(db.name, db.location, schema, stats))
        table = GlobalTable(schema.name, schema, stored)
        self._tables[key] = table
        return table

    def table(self, name: str) -> GlobalTable:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    @property
    def tables(self) -> list[GlobalTable]:
        return list(self._tables.values())

    def stored_table(self, database: str, table: str) -> StoredTable:
        """Look up one stored fragment by database and table name."""
        global_table = self.table(table)
        for fragment in global_table.fragments:
            if fragment.database == database:
                return fragment
        raise CatalogError(f"table {table!r} has no fragment in database {database!r}")

    # -- replicas ----------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone counter covering the replica set.  Derived state
        (plan-cache entries, resolver caches) keyed on it is invalidated
        by any :meth:`add_replica` / :meth:`drop_replica`."""
        return self._version

    def add_replica(
        self,
        database: str,
        table: str,
        site: str,
        staleness_seconds: float = 0.0,
    ) -> Replica:
        """Declare that the fragment of ``table`` in ``database`` is also
        readable at ``site`` (a location that hosts some database)."""
        primary = self.stored_table(database, table)
        if site not in self.locations:
            raise CatalogError(
                f"replica site {site!r} hosts no database in this catalog"
            )
        if site == primary.location:
            raise CatalogError(
                f"replica of {primary.qualified_name} at {site!r} duplicates "
                "its primary location"
            )
        key = (database, table.lower())
        existing = self._replicas.setdefault(key, [])
        if any(r.site == site for r in existing):
            raise CatalogError(
                f"{primary.qualified_name} already has a replica at {site!r}"
            )
        replica = Replica(database, table.lower(), site, staleness_seconds)
        existing.append(replica)
        self._version += 1
        return replica

    def drop_replica(self, database: str, table: str, site: str) -> None:
        key = (database, table.lower())
        existing = self._replicas.get(key, [])
        kept = [r for r in existing if r.site != site]
        if len(kept) == len(existing):
            raise CatalogError(
                f"{database}.{table} has no replica at {site!r} to drop"
            )
        if kept:
            self._replicas[key] = kept
        else:
            del self._replicas[key]
        self._refresh.pop((database, table.lower(), site), None)
        self._version += 1

    def set_refresh(
        self, database: str, table: str, site: str, schedule: RefreshSchedule
    ) -> None:
        """Attach (or replace) the refresh schedule of the replica of
        ``database.table`` at ``site``.  Bumps the catalog version: a
        schedule change alters which replicas satisfy a staleness bound,
        so cached located plans and resolver state must re-derive."""
        replicas = self._replicas.get((database, table.lower()), ())
        if not any(r.site == site for r in replicas):
            raise CatalogError(
                f"{database}.{table} has no replica at {site!r} to schedule "
                "refreshes for"
            )
        self._refresh[(database, table.lower(), site)] = schedule
        self._version += 1

    def refresh_schedule(
        self, database: str, table: str, site: str
    ) -> RefreshSchedule | None:
        """The replica's refresh schedule, or ``None`` for the static
        (declared-bound) model."""
        return self._refresh.get((database, table.lower(), site))

    def replicas(self, database: str, table: str) -> list[Replica]:
        """All declared replicas of one stored fragment (may be empty)."""
        return list(self._replicas.get((database, table.lower()), []))

    def all_replicas(self) -> list[Replica]:
        return [r for entries in self._replicas.values() for r in entries]

    def replica_sites(
        self,
        database: str,
        table: str,
        max_staleness: float | None = None,
    ) -> frozenset[str]:
        """Sites holding a replica of the fragment, filtered to those
        whose staleness bound fits ``max_staleness`` (``None`` = any)."""
        entries = self._replicas.get((database, table.lower()), ())
        if max_staleness is not None:
            entries = [
                r for r in entries if r.staleness_seconds <= max_staleness
            ]
        return frozenset(r.site for r in entries)
