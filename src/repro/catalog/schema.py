"""Table schemas: columns, keys, and row-width estimation."""

from __future__ import annotations

from dataclasses import dataclass

from ..datatypes import DataType, default_width
from ..errors import CatalogError


@dataclass(frozen=True)
class Column:
    """One column of a stored table."""

    name: str
    dtype: DataType
    #: Estimated average width in bytes of one value; ``None`` uses the
    #: per-type default.  Used by the ship-cost model.
    width_bytes: int | None = None

    @property
    def width(self) -> int:
        if self.width_bytes is not None:
            return self.width_bytes
        return default_width(self.dtype)


@dataclass(frozen=True)
class ForeignKey:
    """FK constraint: ``columns`` of this table reference ``ref_columns``
    of ``ref_table``.  Drives the ad-hoc query generator's join graph and
    join-cardinality estimation."""

    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]


@dataclass(frozen=True)
class TableSchema:
    """Schema of a stored (or global) table."""

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = ()
    foreign_keys: tuple[ForeignKey, ...] = ()

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in table {self.name!r}")
        known = set(names)
        for key_col in self.primary_key:
            if key_col not in known:
                raise CatalogError(
                    f"primary key column {key_col!r} not in table {self.name!r}"
                )
        for fk in self.foreign_keys:
            for col in fk.columns:
                if col not in known:
                    raise CatalogError(
                        f"foreign key column {col!r} not in table {self.name!r}"
                    )

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def column(self, name: str) -> Column:
        for c in self.columns:
            if c.name == name:
                return c
        raise CatalogError(f"no column {name!r} in table {self.name!r}")

    def column_index(self, name: str) -> int:
        for i, c in enumerate(self.columns):
            if c.name == name:
                return i
        raise CatalogError(f"no column {name!r} in table {self.name!r}")

    @property
    def row_width(self) -> int:
        """Estimated bytes per full row (for ship-cost estimation)."""
        return sum(c.width for c in self.columns)
