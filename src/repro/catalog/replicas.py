"""Replicated base-table fragments.

The paper fixes exactly one location per stored table fragment;
production geo-systems replicate.  A :class:`Replica` declares that the
fragment of ``table`` stored in ``database`` is *also* readable at
``site``, optionally with a staleness bound (how far the copy may lag
the primary, in seconds).  Replicas are read-only alternates: loads
still target the primary fragment and the in-memory
:class:`~repro.geo.GeoDatabase` keys rows by ``(database, table)``, so
every replica read returns byte-identical rows — which is exactly the
Parallel-Correctness/Transferability condition under which re-routing a
subquery across distributions preserves results.

Whether a replica is *legal* to read is a policy question, answered per
scan by :class:`~repro.policy.replicas.ReplicaResolver`: a replica site
is compliant iff the policy grant 𝒜 of the bare full-table scan admits
it.  The catalog layer only records placement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CatalogError


@dataclass(frozen=True)
class Replica:
    """One read-only alternate placement of a stored table fragment.

    ``staleness_seconds`` bounds how far this copy may lag the primary;
    ``0.0`` means synchronously replicated.  Queries carrying a
    ``max_staleness`` requirement only consider replicas whose bound is
    within it (the primary always qualifies).
    """

    database: str
    table: str
    site: str
    staleness_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.staleness_seconds < 0:
            raise CatalogError(
                f"replica {self.database}.{self.table}@{self.site}: "
                f"staleness bound must be >= 0, got {self.staleness_seconds}"
            )

    @property
    def qualified_name(self) -> str:
        return f"{self.database}.{self.table}"

    def describe(self) -> str:
        suffix = f"+{self.staleness_seconds:g}" if self.staleness_seconds else ""
        return f"{self.database}.{self.table}@{self.site}{suffix}"


def parse_replica_spec(spec: str) -> list[Replica]:
    """Parse a CLI replica spec into :class:`Replica` declarations.

    Grammar (entries separated by ``;`` or ``,``)::

        db1.customer@Asia          -- synchronous replica
        db1.customer@Asia+0.5      -- replica lagging up to 0.5 s
        db2.orders@Europe

    Whitespace around tokens is ignored; empty entries are skipped so
    trailing separators are harmless.
    """
    replicas: list[Replica] = []
    for raw in spec.replace(",", ";").split(";"):
        entry = raw.strip()
        if not entry:
            continue
        if "@" not in entry:
            raise CatalogError(
                f"bad replica spec {entry!r}: expected db.table@Site[+staleness]"
            )
        name, _, placement = entry.partition("@")
        if "." not in name:
            raise CatalogError(
                f"bad replica spec {entry!r}: table must be qualified as db.table"
            )
        database, _, table = name.partition(".")
        site, plus, staleness = placement.partition("+")
        database, table, site = database.strip(), table.strip(), site.strip()
        if not database or not table or not site:
            raise CatalogError(
                f"bad replica spec {entry!r}: expected db.table@Site[+staleness]"
            )
        bound = 0.0
        if plus:
            try:
                bound = float(staleness)
            except ValueError:
                raise CatalogError(
                    f"bad replica spec {entry!r}: staleness {staleness!r} "
                    "is not a number"
                ) from None
        replicas.append(Replica(database, table.lower(), site, bound))
    return replicas
