"""Per-replica refresh schedules and the freshness tracker.

PR 8 declared replicas with a *static* staleness bound — a planning-time
annotation.  This module models replica lag as a runtime property on the
same simulated clock the fragment scheduler advances: each replica
carries a :class:`RefreshSchedule` describing when the copy is brought
back in sync with its primary, and a :class:`FreshnessTracker` derives
the replica's staleness — ``now − last refresh completion`` — at any
instant.  Because the schedule is declarative and the clock simulated,
staleness at every admission and failover decision is exactly
reproducible, like the fault plans of :mod:`repro.execution.faults`
whose spec grammar the ``--refresh`` syntax mirrors.

Model
-----
* Every replica is synchronized with its primary at load time (t = 0).
* A schedule with ``period`` refreshes at ``phase``, then every
  ``period`` seconds (``phase`` defaults to one period).
* A :class:`RefreshDegrade` window multiplies the gap *scheduled from*
  any instant inside it by ``factor`` (degraded replication, an
  injectable fault).
* A :class:`RefreshPause` window defers any refresh falling inside it
  to the window's end; an unbounded pause cancels all later refreshes
  (paused replication — the headline injectable fault: staleness then
  grows without bound).
* A replica with *no* schedule keeps PR 8's static model: its declared
  ``staleness_seconds`` bound is taken as its constant lag, so runtime
  checking degenerates to exactly the old planning-time filter.

Schedules are registered on the :class:`~repro.catalog.Catalog` via
:meth:`~repro.catalog.Catalog.set_refresh`, which bumps the catalog
version so replica-resolver caches and the compliant plan cache
invalidate precisely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

from ..errors import CatalogError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .catalog import Catalog
    from .replicas import Replica

#: Tolerance for staleness/bound comparisons on the simulated clock.
FRESHNESS_EPS = 1e-9

#: Guard against pathological schedules (a microscopic period queried at
#: a late instant would otherwise iterate forever).
_MAX_REFRESH_STEPS = 200_000


@dataclass(frozen=True)
class RefreshPause:
    """Replication paused from ``at``; forever when ``duration`` is
    ``None``, else until ``at + duration``."""

    at: float = 0.0
    duration: float | None = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise CatalogError(f"refresh pause onset must be >= 0, got {self.at}")
        if self.duration is not None and self.duration <= 0:
            raise CatalogError(
                f"refresh pause duration must be > 0, got {self.duration}"
            )

    def active(self, when: float) -> bool:
        if when < self.at:
            return False
        return self.duration is None or when < self.at + self.duration

    def __str__(self) -> str:
        window = "" if self.duration is None else f"+{self.duration:g}"
        return f"@{self.at:g}{window}"


@dataclass(frozen=True)
class RefreshDegrade:
    """Replication slowed by ``factor`` during the window: refresh gaps
    scheduled from an instant inside it are multiplied."""

    factor: float
    at: float = 0.0
    duration: float | None = None

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise CatalogError(
                f"refresh degrade factor must be >= 1, got {self.factor}"
            )
        if self.at < 0:
            raise CatalogError(f"refresh degrade onset must be >= 0, got {self.at}")
        if self.duration is not None and self.duration <= 0:
            raise CatalogError(
                f"refresh degrade duration must be > 0, got {self.duration}"
            )

    def active(self, when: float) -> bool:
        if when < self.at:
            return False
        return self.duration is None or when < self.at + self.duration

    def __str__(self) -> str:
        window = "" if self.duration is None else f"+{self.duration:g}"
        return f"@{self.at:g}{window}x{self.factor:g}"


@dataclass(frozen=True)
class RefreshSchedule:
    """One replica's refresh behavior on the simulated clock."""

    #: Nominal seconds between refresh completions (``None`` = no
    #: periodic refresh declared: the replica keeps the static model).
    period: float | None = None
    #: Instant of the first refresh after load (0.0 = one period in).
    phase: float = 0.0
    pauses: tuple[RefreshPause, ...] = ()
    degradations: tuple[RefreshDegrade, ...] = ()

    def __post_init__(self) -> None:
        if self.period is not None and self.period <= 0:
            raise CatalogError(
                f"refresh period must be > 0 seconds, got {self.period}"
            )
        if self.phase < 0:
            raise CatalogError(f"refresh phase must be >= 0, got {self.phase}")

    # -- refresh completion instants --------------------------------------

    def _degrade_factor(self, when: float) -> float:
        factor = 1.0
        for event in self.degradations:
            if event.active(when):
                factor *= event.factor
        return factor

    def _deferred(self, instant: float) -> float | None:
        """Defer ``instant`` past any pause window covering it; ``None``
        when an unbounded pause swallows it (and everything after)."""
        moved = True
        while moved:
            moved = False
            for pause in self.pauses:
                if pause.active(instant):
                    if pause.duration is None:
                        return None
                    instant = pause.at + pause.duration
                    moved = True
        return instant

    def refreshes(self, horizon: float):
        """Yield refresh-completion instants in ``(0, horizon]``."""
        if self.period is None:
            return
        nominal = self.phase if self.phase > 0 else self.period
        for _ in range(_MAX_REFRESH_STEPS):
            completion = self._deferred(nominal)
            if completion is None:
                return
            if completion > horizon:
                return
            yield completion
            nominal = completion + self.period * self._degrade_factor(completion)
        raise CatalogError(
            f"refresh schedule exceeds {_MAX_REFRESH_STEPS} refreshes before "
            f"t={horizon:g}s; the period ({self.period:g}s) is too small for "
            f"this simulation horizon"
        )

    def last_refresh(self, at: float) -> float:
        """The latest refresh completion at or before ``at`` (0.0 — the
        load-time synchronization — when none has happened yet)."""
        last = 0.0
        for completion in self.refreshes(at):
            last = completion
        return last

    def next_refresh(self, after: float) -> float | None:
        """The first refresh completion strictly after ``after``, or
        ``None`` when no further refresh will ever happen (no period, or
        replication paused forever)."""
        if self.period is None:
            return None
        nominal = self.phase if self.phase > 0 else self.period
        for _ in range(_MAX_REFRESH_STEPS):
            completion = self._deferred(nominal)
            if completion is None:
                return None
            if completion > after + FRESHNESS_EPS:
                return completion
            nominal = completion + self.period * self._degrade_factor(completion)
        raise CatalogError(
            f"refresh schedule exceeds {_MAX_REFRESH_STEPS} refreshes before "
            f"t={after:g}s; the period ({self.period:g}s) is too small for "
            f"this simulation horizon"
        )

    def __str__(self) -> str:
        parts = []
        if self.period is not None:
            phase = f"+{self.phase:g}" if self.phase > 0 else ""
            parts.append(f"every @{self.period:g}{phase}")
        parts.extend(f"pause {p}" for p in self.pauses)
        parts.extend(f"degrade {d}" for d in self.degradations)
        return "; ".join(parts) or "(static)"


# -- the tracker ---------------------------------------------------------------


class FreshnessTracker:
    """Derives each replica's staleness at any simulated instant from
    the catalog's declared replicas and refresh schedules.

    The tracker is stateless over the clock — every query recomputes
    from the declarative schedule — so the scheduler, the failover
    planner, and the *independent* trace auditor all derive identical
    staleness for the same instant.
    """

    def __init__(self, catalog: "Catalog") -> None:
        self.catalog = catalog

    def _replica(self, database: str, table: str, site: str) -> "Replica | None":
        for replica in self.catalog.replicas(database, table):
            if replica.site == site:
                return replica
        return None

    def is_replica_site(self, database: str, table: str, site: str) -> bool:
        """Is ``site`` a declared replica of the stored fragment (as
        opposed to its primary location)?"""
        return self._replica(database, table, site) is not None

    def staleness(self, database: str, table: str, site: str, at: float) -> float:
        """Seconds the copy at ``site`` lags the primary at instant
        ``at``: 0.0 for the primary, ``at − last refresh`` for a
        scheduled replica, the declared static bound otherwise.  Raises
        :class:`~repro.errors.CatalogError` for a site holding neither
        the primary nor a declared replica — freshness of an unknown
        copy must fail loudly, never read as fresh."""
        stored = self.catalog.stored_table(database, table)
        if stored.location == site:
            return 0.0
        replica = self._replica(database, table, site)
        if replica is None:
            raise CatalogError(
                f"{database}.{table} has no replica at {site!r}; cannot "
                f"derive its staleness"
            )
        schedule = self.catalog.refresh_schedule(database, table, site)
        if schedule is None or schedule.period is None:
            return replica.staleness_seconds
        return max(0.0, at - schedule.last_refresh(at))

    def next_refresh(
        self, database: str, table: str, site: str, after: float
    ) -> float | None:
        """The replica's first refresh completion after ``after`` (the
        instant a waiting reader becomes fresh), or ``None`` when no
        refresh will ever come."""
        schedule = self.catalog.refresh_schedule(database, table, site)
        if schedule is None:
            return None
        return schedule.next_refresh(after)


# -- the --refresh spec grammar ------------------------------------------------


def _parse_target(body: str, what: str) -> tuple[str, str, str, str]:
    """Split ``db.table@Site@TIMING...`` into (db, table, site, timing)."""
    target, sep, timing = body.rpartition("@")
    if not sep or not target or not timing:
        raise ValueError(f"expected db.table@SITE@{what}")
    qualified, at, site = target.partition("@")
    if not at or not site:
        raise ValueError(f"expected db.table@SITE@{what}")
    database, dot, table = qualified.partition(".")
    if not dot or not database or not table:
        raise ValueError("expected a db.table qualified name")
    return database, table, site, timing


def random_refresh_schedules(
    seed: int,
    replicas: Sequence["Replica"],
    horizon: float = 0.25,
) -> dict[tuple[str, str, str], RefreshSchedule]:
    """Draw a seeded random refresh schedule for every declared replica
    — the ``random:SEED`` arm of the spec grammar, for chaos suites.

    Periods are drawn at the makespan scale of the benchmark plans (tens
    of simulated milliseconds, like :meth:`FaultPlan.random`'s horizon)
    so staleness actually varies across a run; some replicas addionally
    draw a degraded window or a bounded pause.
    """
    rng = random.Random(seed)
    schedules: dict[tuple[str, str, str], RefreshSchedule] = {}
    for replica in sorted(replicas, key=lambda r: (r.database, r.table, r.site)):
        period = round(rng.uniform(horizon / 10, horizon), 4)
        schedule = RefreshSchedule(
            period=period, phase=round(rng.uniform(0.0, period), 4)
        )
        roll = rng.random()
        if roll < 0.25:
            schedule = replace(
                schedule,
                pauses=(
                    RefreshPause(
                        at=round(rng.uniform(0.0, horizon), 3),
                        duration=round(rng.uniform(horizon / 2, 2 * horizon), 3),
                    ),
                ),
            )
        elif roll < 0.5:
            schedule = replace(
                schedule,
                degradations=(
                    RefreshDegrade(
                        factor=round(rng.uniform(1.5, 4.0), 2),
                        at=round(rng.uniform(0.0, horizon), 3),
                        duration=round(rng.uniform(horizon / 2, 2 * horizon), 3),
                    ),
                ),
            )
        schedules[(replica.database, replica.table, replica.site)] = schedule
    return schedules


def parse_refresh_spec(
    spec: str,
    replicas: Sequence["Replica"] | None = None,
) -> dict[tuple[str, str, str], RefreshSchedule]:
    """Parse the CLI ``--refresh`` syntax into per-replica schedules.

    Events are ``;``-separated, mirroring ``--faults``.  Grammar per
    event::

        every:db.table@SITE@PERIOD[+PHASE]
        pause:db.table@SITE@T[+DURATION]
        degrade:db.table@SITE@T[+DURATION]xFACTOR
        random:SEED        (seeded schedules over all declared replicas)

    Examples: ``every:db1.customer@Europe@0.05``,
    ``pause:db1.customer@Europe@0.1`` (paused forever from t=0.1),
    ``degrade:db2.orders@Asia@0+0.5x4``, ``random:42``.

    ``pause``/``degrade`` events require an ``every`` schedule for the
    same replica (there is no refresh stream to pause otherwise) — a
    spec violating that fails loudly instead of silently doing nothing.
    Returns ``{(database, table, site): RefreshSchedule}``.
    """
    schedules: dict[tuple[str, str, str], RefreshSchedule] = {}
    extras: list[tuple[str, tuple[str, str, str], object]] = []
    for raw in spec.split(";"):
        part = raw.strip()
        if not part:
            continue
        kind, _, body = part.partition(":")
        try:
            if kind == "random":
                if replicas is None:
                    raise ValueError("random refresh plans need the replica list")
                schedules.update(random_refresh_schedules(int(body), replicas))
                continue
            if kind == "every":
                database, table, site, timing = _parse_target(
                    body, "PERIOD[+PHASE]"
                )
                period, _, phase = timing.partition("+")
                schedule = RefreshSchedule(
                    period=float(period), phase=float(phase) if phase else 0.0
                )
                key = (database, table.lower(), site)
                previous = schedules.get(key)
                if previous is not None and previous.period is not None:
                    raise ValueError(
                        f"duplicate every: schedule for {database}.{table}@{site}"
                    )
                if previous is not None:
                    schedule = replace(
                        schedule,
                        pauses=previous.pauses,
                        degradations=previous.degradations,
                    )
                schedules[key] = schedule
            elif kind == "pause":
                database, table, site, timing = _parse_target(body, "T[+DURATION]")
                onset, _, duration = timing.partition("+")
                pause = RefreshPause(
                    at=float(onset or 0.0),
                    duration=float(duration) if duration else None,
                )
                extras.append(("pause", (database, table.lower(), site), pause))
            elif kind == "degrade":
                database, table, site, timing = _parse_target(
                    body, "T[+DURATION]xFACTOR"
                )
                window, x, factor = timing.rpartition("x")
                if not x:
                    raise ValueError("expected xFACTOR")
                onset, _, duration = window.partition("+")
                degrade = RefreshDegrade(
                    factor=float(factor),
                    at=float(onset or 0.0),
                    duration=float(duration) if duration else None,
                )
                extras.append(("degrade", (database, table.lower(), site), degrade))
            else:
                raise ValueError(f"unknown refresh event kind {kind!r}")
        except CatalogError:
            raise
        except ValueError as error:
            raise CatalogError(f"bad refresh event {part!r}: {error}") from None
    for kind, key, event in extras:
        schedule = schedules.get(key)
        if schedule is None or schedule.period is None:
            database, table, site = key
            raise CatalogError(
                f"refresh event {kind}:{database}.{table}@{site} has no "
                f"every: schedule to modify — declare the replica's period "
                f"first (there is no refresh stream to {kind} otherwise)"
            )
        if kind == "pause":
            schedules[key] = replace(
                schedule, pauses=(*schedule.pauses, event)
            )
        else:
            schedules[key] = replace(
                schedule, degradations=(*schedule.degradations, event)
            )
    return schedules


def apply_refresh_spec(catalog: "Catalog", spec: str) -> int:
    """Parse ``spec`` and register every schedule on ``catalog`` (each
    registration bumps the catalog version).  Returns the number of
    replicas scheduled; unknown replicas fail with a typed
    :class:`~repro.errors.CatalogError` from ``set_refresh``."""
    schedules = parse_refresh_spec(spec, replicas=catalog.all_replicas())
    for (database, table, site), schedule in sorted(schedules.items()):
        catalog.set_refresh(database, table, site, schedule)
    return len(schedules)
