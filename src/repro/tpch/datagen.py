"""Deterministic TPC-H-like data generator.

A from-scratch stand-in for ``dbgen``: same schema, key structure, and
value domains (regions, nations, market segments, part types with the
COPPER/BRASS/STEEL vocabulary, 1992–1998 dates, 1–50 sizes and
quantities), generated from a seeded RNG so every run of the benchmark
sees identical data.  Scale is configurable; the paper notes that the
scale factor does not affect query *optimization* — it matters only for
the measured shipped bytes of the plan-quality experiment, which scale
linearly.
"""

from __future__ import annotations

import datetime
import random
from typing import Iterator

from .schema import row_count

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

MARKET_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]

PART_TYPE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
PART_TYPE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
PART_TYPE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

PART_NAME_WORDS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cream", "cyan", "dark",
    "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest", "frosted",
    "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew", "hot",
    "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon", "light",
    "lime", "linen", "magenta", "maroon", "medium", "metallic", "midnight",
    "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid",
    "pale", "papaya", "peach", "peru", "pink", "plum", "powder", "puff",
    "purple", "red", "rose", "rosy", "royal", "saddle", "salmon", "sandy",
    "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring", "steel",
    "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow",
]

CONTAINERS = ["SM CASE", "SM BOX", "LG CASE", "LG BOX", "MED BAG", "JUMBO JAR"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIP_INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]

_EPOCH = datetime.date(1992, 1, 1)
_DATE_RANGE_DAYS = (datetime.date(1998, 8, 2) - _EPOCH).days


def _random_date(rng: random.Random, max_days: int = _DATE_RANGE_DAYS) -> datetime.date:
    return _EPOCH + datetime.timedelta(days=rng.randrange(max_days))


def _comment(rng: random.Random, length: int = 24) -> str:
    words = rng.sample(PART_NAME_WORDS, 3)
    return " ".join(words)[:length]


class TpchGenerator:
    """Generates all eight tables at a given scale factor, deterministically
    for a given seed."""

    def __init__(self, scale: float = 0.01, seed: int = 2021) -> None:
        self.scale = scale
        self.seed = seed
        self.counts = {
            name: row_count(name, scale)
            for name in (
                "region", "nation", "supplier", "customer",
                "part", "partsupp", "orders", "lineitem",
            )
        }

    def _rng(self, table: str) -> random.Random:
        return random.Random(f"{self.seed}:{table}")

    # -- fixed tables ------------------------------------------------------------

    def region(self) -> Iterator[tuple]:
        rng = self._rng("region")
        for key, name in enumerate(REGIONS):
            yield (key, name, _comment(rng))

    def nation(self) -> Iterator[tuple]:
        rng = self._rng("nation")
        for key, (name, regionkey) in enumerate(NATIONS):
            yield (key, name, regionkey, _comment(rng))

    # -- scaled tables -------------------------------------------------------------

    def supplier(self) -> Iterator[tuple]:
        rng = self._rng("supplier")
        for key in range(1, self.counts["supplier"] + 1):
            yield (
                key,
                f"Supplier#{key:09d}",
                _comment(rng, 25),
                rng.randrange(len(NATIONS)),
                _phone(rng),
                round(rng.uniform(-999.99, 9999.99), 2),
                _comment(rng, 40),
            )

    def customer(self) -> Iterator[tuple]:
        rng = self._rng("customer")
        for key in range(1, self.counts["customer"] + 1):
            yield (
                key,
                f"Customer#{key:09d}",
                _comment(rng, 25),
                rng.randrange(len(NATIONS)),
                _phone(rng),
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(MARKET_SEGMENTS),
                _comment(rng, 40),
            )

    def part(self) -> Iterator[tuple]:
        rng = self._rng("part")
        for key in range(1, self.counts["part"] + 1):
            name = " ".join(rng.sample(PART_NAME_WORDS, 5))
            ptype = " ".join(
                (rng.choice(PART_TYPE_1), rng.choice(PART_TYPE_2), rng.choice(PART_TYPE_3))
            )
            yield (
                key,
                name,
                f"Manufacturer#{rng.randrange(1, 6)}",
                f"Brand#{rng.randrange(1, 6)}{rng.randrange(1, 6)}",
                ptype,
                rng.randrange(1, 51),
                rng.choice(CONTAINERS),
                round(900 + (key % 1000) + rng.uniform(0, 100), 2),
                _comment(rng, 15),
            )

    def partsupp(self) -> Iterator[tuple]:
        rng = self._rng("partsupp")
        n_parts = self.counts["part"]
        n_suppliers = self.counts["supplier"]
        per_part = max(1, self.counts["partsupp"] // max(1, n_parts))
        for partkey in range(1, n_parts + 1):
            for i in range(per_part):
                suppkey = ((partkey + i * (n_suppliers // per_part + 1)) % n_suppliers) + 1
                yield (
                    partkey,
                    suppkey,
                    rng.randrange(1, 10_000),
                    round(rng.uniform(1.0, 1000.0), 2),
                    _comment(rng, 40),
                )

    def order_date(self, orderkey: int) -> datetime.date:
        """Order date as a pure function of the order key, so orders() and
        lineitem() agree without replaying RNG state."""
        import zlib

        token = f"{self.seed}:odate:{orderkey}".encode("ascii")
        days = zlib.crc32(token) % (_DATE_RANGE_DAYS - 151)
        return _EPOCH + datetime.timedelta(days=days)

    def orders(self) -> Iterator[tuple]:
        rng = self._rng("orders")
        n_customers = self.counts["customer"]
        for key in range(1, self.counts["orders"] + 1):
            yield (
                key,
                rng.randrange(1, n_customers + 1),
                rng.choice(["O", "F", "P"]),
                round(rng.uniform(1000.0, 400_000.0), 2),
                self.order_date(key),
                rng.choice(PRIORITIES),
                f"Clerk#{rng.randrange(1, 1001):09d}",
                0,
                _comment(rng, 30),
            )

    def lineitem(self) -> Iterator[tuple]:
        rng = self._rng("lineitem")
        n_orders = self.counts["orders"]
        n_parts = self.counts["part"]
        n_suppliers = self.counts["supplier"]
        per_order = max(1, self.counts["lineitem"] // max(1, n_orders))
        for orderkey in range(1, n_orders + 1):
            orderdate = self.order_date(orderkey)
            for linenumber in range(1, per_order + 1):
                partkey = rng.randrange(1, n_parts + 1)
                suppkey = rng.randrange(1, n_suppliers + 1)
                quantity = rng.randrange(1, 51)
                extended = round(quantity * rng.uniform(900.0, 2000.0), 2)
                shipdate = orderdate + datetime.timedelta(days=rng.randrange(1, 122))
                commitdate = orderdate + datetime.timedelta(days=rng.randrange(30, 91))
                receiptdate = shipdate + datetime.timedelta(days=rng.randrange(1, 31))
                yield (
                    orderkey,
                    partkey,
                    suppkey,
                    linenumber,
                    float(quantity),
                    extended,
                    round(rng.uniform(0.0, 0.10), 2),
                    round(rng.uniform(0.0, 0.08), 2),
                    rng.choice(["R", "A", "N"]),
                    rng.choice(["O", "F"]),
                    shipdate,
                    commitdate,
                    receiptdate,
                    rng.choice(SHIP_INSTRUCTIONS),
                    rng.choice(SHIP_MODES),
                    _comment(rng, 20),
                )

    def table(self, name: str) -> Iterator[tuple]:
        return getattr(self, name)()


def _phone(rng: random.Random) -> str:
    return (
        f"{rng.randrange(10, 35)}-{rng.randrange(100, 1000)}-"
        f"{rng.randrange(100, 1000)}-{rng.randrange(1000, 10_000)}"
    )
