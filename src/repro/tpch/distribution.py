"""Geo-distribution of the TPC-H tables (paper Table 2 and §7.5).

Five local databases at five locations (the paper's footnote 12 names
them Europe, Africa, Asia, North America, and Middle East for L1–L5):

====  =====  ======================
Loc.  DB     Tables
====  =====  ======================
L1    db1    customer, orders
L2    db2    supplier, partsupp
L3    db3    part
L4    db4    lineitem
L5    db5    nation, region
====  =====  ======================

§7.5 additionally fragments ``customer`` and ``orders`` across L1–L5 via
GAV mappings (global table = union of per-database fragments);
:func:`build_catalog` supports that through ``fragmented`` /
``fragment_locations``.
"""

from __future__ import annotations

from ..catalog import Catalog, TableSchema, TableStats, uniform_stats
from ..geo import GeoDatabase, NetworkModel, synthetic_network
from .datagen import MARKET_SEGMENTS, NATIONS, REGIONS, TpchGenerator
from .schema import ALL_TABLES, row_count

#: Location names L1..L5 (identifiers — usable in policy expressions).
LOCATIONS = ("Europe", "Africa", "Asia", "NorthAmerica", "MiddleEast")

#: Table 2 of the paper: database -> (location, tables).
TABLE_PLACEMENT = {
    "db1": ("Europe", ("customer", "orders")),
    "db2": ("Africa", ("supplier", "partsupp")),
    "db3": ("Asia", ("part",)),
    "db4": ("NorthAmerica", ("lineitem",)),
    "db5": ("MiddleEast", ("nation", "region")),
}

_SCHEMAS = {schema.name: schema for schema in ALL_TABLES}


def _synthetic_stats(schema: TableSchema, rows: int, scale: float) -> TableStats:
    """Plausible distinct counts without generating data (fast path used by
    the optimization-time benchmarks, where only estimates matter).

    Foreign-key columns get the referenced table's cardinality as their
    distinct count — without this, join outputs are underestimated by
    orders of magnitude and the site selector "caravans" intermediates
    through every site."""
    overrides: dict[str, int] = {}
    for fk in schema.foreign_keys:
        if len(fk.columns) == 1:
            ref_rows = row_count(fk.ref_table, scale)
            overrides[fk.columns[0]] = max(1, min(rows, ref_rows))
    known_distinct = {
        "r_name": len(REGIONS),
        "n_name": len(NATIONS),
        "n_regionkey": len(REGIONS),
        "c_mktsegment": len(MARKET_SEGMENTS),
        "c_nationkey": len(NATIONS),
        "s_nationkey": len(NATIONS),
        "p_size": 50,
        "p_type": 150,
        "p_brand": 25,
        "p_mfgr": 5,
        "o_orderdate": 2400,
        "o_orderstatus": 3,
        "l_returnflag": 3,
        "l_linestatus": 2,
        "l_shipdate": 2500,
        "l_quantity": 50,
    }
    for col in schema.columns:
        if col.name in known_distinct:
            overrides[col.name] = min(rows, known_distinct[col.name]) or 1
    return uniform_stats(schema, rows, overrides)


def build_catalog(
    scale: float = 0.01,
    fragmented: tuple[str, ...] = (),
    fragment_locations: int = 5,
) -> Catalog:
    """Build the geo-distributed TPC-H catalog with synthetic statistics.

    ``fragmented`` names global tables to distribute over the first
    ``fragment_locations`` databases (GAV union mapping, §7.5); all other
    tables follow Table 2.
    """
    catalog = Catalog()
    for db_name, (location, _tables) in TABLE_PLACEMENT.items():
        catalog.add_database(db_name, location)
    db_names = list(TABLE_PLACEMENT)
    for db_name, (_location, tables) in TABLE_PLACEMENT.items():
        for table in tables:
            schema = _SCHEMAS[table]
            total = row_count(table, scale)
            if table in fragmented:
                share = max(1, total // fragment_locations)
                fragments = [
                    (db_names[i], _synthetic_stats(schema, share, scale))
                    for i in range(fragment_locations)
                ]
                catalog.add_fragmented_table(schema, fragments)
            else:
                catalog.add_table(
                    db_name, schema, stats=_synthetic_stats(schema, total, scale)
                )
    return catalog


def build_benchmark(
    scale: float = 0.01,
    seed: int = 2021,
    fragmented: tuple[str, ...] = (),
    fragment_locations: int = 5,
    stats_scale: float | None = None,
) -> tuple[Catalog, GeoDatabase]:
    """Build catalog *and* load generated data.

    By default the loaded data makes the statistics exact.  Passing
    ``stats_scale`` keeps the catalog's synthetic statistics at that scale
    instead — the plan-quality experiment optimizes plans against
    production-scale (SF 1) statistics while executing them on scaled-down
    data, so plan choices match the optimization-time experiments and only
    the measured bytes shrink (linearly)."""
    catalog = build_catalog(
        stats_scale if stats_scale is not None else scale,
        fragmented=fragmented,
        fragment_locations=fragment_locations,
    )
    database = GeoDatabase(catalog)
    generator = TpchGenerator(scale=scale, seed=seed)
    db_names = list(TABLE_PLACEMENT)
    update_stats = stats_scale is None
    for db_name, (_location, tables) in TABLE_PLACEMENT.items():
        for table in tables:
            rows = list(generator.table(table))
            if table in fragmented:
                # Round-robin rows over the fragment databases.
                for i in range(fragment_locations):
                    shard = rows[i::fragment_locations]
                    database.load(db_names[i], table, shard, update_stats=update_stats)
            else:
                database.load(db_name, table, rows, update_stats=update_stats)
    return catalog, database


def default_network() -> NetworkModel:
    return synthetic_network(LOCATIONS)


def home_database(table: str) -> str:
    """Database storing ``table`` under the Table 2 placement."""
    for db_name, (_location, tables) in TABLE_PLACEMENT.items():
        if table in tables:
            return db_name
    raise KeyError(table)
