"""Ad-hoc query generator (paper §7.1).

"Our query generator creates an ad-hoc query by randomly selecting a
table and joining in additional tables using the PK-FK relationship.  It
chooses joining tables in a way that they span over two or more
locations.  It then randomly selects output columns and generates query
predicates.  For aggregation queries, it randomly chooses grouping as
well as aggregation attributes."  Distribution: 55% of queries reference
two tables, 35% three, 10% four; about 30% aggregate; four output columns
and 3–4 non-join predicates on average.

Predicates are drawn from the same per-table condition pool the policy
generator uses, so the implication test has realistic pass/fail rates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .distribution import TABLE_PLACEMENT, home_database
from .policygen import TABLE_PROPERTIES
from .schema import ALL_TABLES

_SCHEMAS = {schema.name: schema for schema in ALL_TABLES}

#: Undirected PK-FK join graph: (table_a, col_a, table_b, col_b).
JOIN_EDGES = [
    ("nation", "n_regionkey", "region", "r_regionkey"),
    ("supplier", "s_nationkey", "nation", "n_nationkey"),
    ("customer", "c_nationkey", "nation", "n_nationkey"),
    ("partsupp", "ps_partkey", "part", "p_partkey"),
    ("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
    ("orders", "o_custkey", "customer", "c_custkey"),
    ("lineitem", "l_orderkey", "orders", "o_orderkey"),
    ("lineitem", "l_partkey", "part", "p_partkey"),
    ("lineitem", "l_suppkey", "supplier", "s_suppkey"),
]


def _location_of(table: str) -> str:
    db = home_database(table)
    return TABLE_PLACEMENT[db][0]


def _neighbors(table: str) -> list[tuple[str, str, str]]:
    """(other_table, this_col, other_col) for every FK edge at ``table``."""
    out = []
    for a, ca, b, cb in JOIN_EDGES:
        if a == table:
            out.append((b, ca, cb))
        elif b == table:
            out.append((a, cb, ca))
    return out


@dataclass
class GeneratedQuery:
    sql: str
    tables: tuple[str, ...]
    is_aggregate: bool
    locations: frozenset[str]


class AdHocQueryGenerator:
    """Generates the paper's 400-query ad-hoc workload."""

    def __init__(self, seed: int = 42) -> None:
        self.rng = random.Random(seed)

    def generate(self, count: int) -> list[GeneratedQuery]:
        return [self.one() for _ in range(count)]

    def one(self) -> GeneratedQuery:
        rng = self.rng
        n_tables = rng.choices([2, 3, 4], weights=[55, 35, 10])[0]
        tables, join_conjuncts = self._join_subgraph(n_tables)
        is_aggregate = rng.random() < 0.30

        predicates = self._predicates(tables)
        where = " AND ".join(join_conjuncts + predicates)

        if is_aggregate:
            select, group_by = self._aggregate_outputs(tables)
            sql = f"SELECT {select} FROM {', '.join(tables)} WHERE {where}"
            if group_by:
                sql += f" GROUP BY {', '.join(group_by)}"
        else:
            select = ", ".join(self._output_columns(tables))
            sql = f"SELECT {select} FROM {', '.join(tables)} WHERE {where}"

        locations = frozenset(_location_of(t) for t in tables)
        return GeneratedQuery(
            sql=sql,
            tables=tuple(tables),
            is_aggregate=is_aggregate,
            locations=locations,
        )

    # -- pieces ----------------------------------------------------------------

    def _join_subgraph(self, n_tables: int) -> tuple[list[str], list[str]]:
        """Random connected FK subgraph spanning ≥2 locations."""
        rng = self.rng
        for _attempt in range(200):
            start = rng.choice(sorted(_SCHEMAS))
            tables = [start]
            conjuncts: list[str] = []
            while len(tables) < n_tables:
                frontier = [
                    (t, other, col, ocol)
                    for t in tables
                    for other, col, ocol in _neighbors(t)
                    if other not in tables
                ]
                if not frontier:
                    break
                t, other, col, ocol = rng.choice(frontier)
                tables.append(other)
                conjuncts.append(f"{t}.{col} = {other}.{ocol}")
            if len(tables) != n_tables:
                continue
            if len({_location_of(t) for t in tables}) >= 2:
                return tables, conjuncts
        raise RuntimeError("could not generate a multi-location join subgraph")

    def _output_columns(self, tables: list[str], target: int = 4) -> list[str]:
        rng = self.rng
        pool = [
            f"{t}.{col}"
            for t in tables
            for col in _SCHEMAS[t].column_names
            if not col.endswith("comment")
        ]
        k = min(len(pool), max(2, int(rng.gauss(target, 1))))
        return sorted(rng.sample(pool, k))

    def _predicates(self, tables: list[str]) -> list[str]:
        rng = self.rng
        pool = []
        for t in tables:
            for condition in TABLE_PROPERTIES[t]["conditions"]:
                pool.append(_qualify(condition, t))
        k = min(len(pool), rng.choice([3, 3, 4, 4]))
        return rng.sample(pool, k) if pool else []

    def _aggregate_outputs(self, tables: list[str]) -> tuple[str, list[str]]:
        rng = self.rng
        agg_pool = [
            (t, col)
            for t in tables
            for col in TABLE_PROPERTIES[t]["aggregatable"]
        ]
        group_pool = [
            (t, col)
            for t in tables
            for col in TABLE_PROPERTIES[t]["groupable"]
        ]
        items: list[str] = []
        group_by: list[str] = []
        if group_pool and rng.random() < 0.9:
            for t, col in rng.sample(group_pool, min(len(group_pool), rng.randint(1, 2))):
                group_by.append(f"{t}.{col}")
                items.append(f"{t}.{col}")
        if agg_pool:
            for t, col in rng.sample(agg_pool, min(len(agg_pool), rng.randint(1, 2))):
                func = rng.choice(["SUM", "AVG", "MIN", "MAX", "COUNT"])
                items.append(f"{func}({t}.{col}) AS {func.lower()}_{col}")
        else:
            items.append("COUNT(*) AS cnt")
        return ", ".join(items), group_by


def _qualify(condition: str, table: str) -> str:
    """Qualify bare column names in a pooled condition with the table name
    (the generator uses table names as aliases)."""
    out = condition
    for col in _SCHEMAS[table].column_names:
        out = out.replace(col, f"{table}.{col}")
    return out
