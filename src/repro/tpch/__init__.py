"""Geo-distributed TPC-H substrate (paper section 7 evaluation setup)."""

from .schema import ALL_TABLES, BASE_ROW_COUNTS, row_count
from .datagen import TpchGenerator
from .distribution import (
    LOCATIONS,
    TABLE_PLACEMENT,
    build_benchmark,
    build_catalog,
    default_network,
    home_database,
)
from .queries import EXTRA_QUERIES, JOIN_COMPLEXITY, QUERIES, Q1, Q2, Q3, Q5, Q6, Q7, Q8, Q9, Q10
from .policygen import (
    CURATED_SETS,
    PolicyGenerator,
    TABLE_PROPERTIES,
    curated_policies,
    locations_sweep_policies,
)
from .querygen import AdHocQueryGenerator, GeneratedQuery, JOIN_EDGES

__all__ = [
    "ALL_TABLES",
    "BASE_ROW_COUNTS",
    "row_count",
    "TpchGenerator",
    "LOCATIONS",
    "TABLE_PLACEMENT",
    "build_benchmark",
    "build_catalog",
    "default_network",
    "home_database",
    "EXTRA_QUERIES",
    "JOIN_COMPLEXITY",
    "QUERIES",
    "Q1",
    "Q2",
    "Q3",
    "Q5",
    "Q6",
    "Q7",
    "Q8",
    "Q9",
    "Q10",
    "CURATED_SETS",
    "PolicyGenerator",
    "TABLE_PROPERTIES",
    "curated_policies",
    "locations_sweep_policies",
    "AdHocQueryGenerator",
    "GeneratedQuery",
    "JOIN_EDGES",
]
