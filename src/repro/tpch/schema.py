"""The TPC-H schema (all eight tables, standard columns and keys)."""

from __future__ import annotations

from ..catalog import Column, ForeignKey, TableSchema
from ..datatypes import DataType

I = DataType.INTEGER
D = DataType.DECIMAL
V = DataType.VARCHAR
DT = DataType.DATE


REGION = TableSchema(
    "region",
    (
        Column("r_regionkey", I),
        Column("r_name", V, width_bytes=12),
        Column("r_comment", V, width_bytes=60),
    ),
    primary_key=("r_regionkey",),
)

NATION = TableSchema(
    "nation",
    (
        Column("n_nationkey", I),
        Column("n_name", V, width_bytes=16),
        Column("n_regionkey", I),
        Column("n_comment", V, width_bytes=60),
    ),
    primary_key=("n_nationkey",),
    foreign_keys=(ForeignKey(("n_regionkey",), "region", ("r_regionkey",)),),
)

SUPPLIER = TableSchema(
    "supplier",
    (
        Column("s_suppkey", I),
        Column("s_name", V, width_bytes=18),
        Column("s_address", V, width_bytes=25),
        Column("s_nationkey", I),
        Column("s_phone", V, width_bytes=15),
        Column("s_acctbal", D),
        Column("s_comment", V, width_bytes=60),
    ),
    primary_key=("s_suppkey",),
    foreign_keys=(ForeignKey(("s_nationkey",), "nation", ("n_nationkey",)),),
)

CUSTOMER = TableSchema(
    "customer",
    (
        Column("c_custkey", I),
        Column("c_name", V, width_bytes=18),
        Column("c_address", V, width_bytes=25),
        Column("c_nationkey", I),
        Column("c_phone", V, width_bytes=15),
        Column("c_acctbal", D),
        Column("c_mktsegment", V, width_bytes=10),
        Column("c_comment", V, width_bytes=60),
    ),
    primary_key=("c_custkey",),
    foreign_keys=(ForeignKey(("c_nationkey",), "nation", ("n_nationkey",)),),
)

PART = TableSchema(
    "part",
    (
        Column("p_partkey", I),
        Column("p_name", V, width_bytes=35),
        Column("p_mfgr", V, width_bytes=25),
        Column("p_brand", V, width_bytes=10),
        Column("p_type", V, width_bytes=25),
        Column("p_size", I),
        Column("p_container", V, width_bytes=10),
        Column("p_retailprice", D),
        Column("p_comment", V, width_bytes=20),
    ),
    primary_key=("p_partkey",),
)

PARTSUPP = TableSchema(
    "partsupp",
    (
        Column("ps_partkey", I),
        Column("ps_suppkey", I),
        Column("ps_availqty", I),
        Column("ps_supplycost", D),
        Column("ps_comment", V, width_bytes=60),
    ),
    primary_key=("ps_partkey", "ps_suppkey"),
    foreign_keys=(
        ForeignKey(("ps_partkey",), "part", ("p_partkey",)),
        ForeignKey(("ps_suppkey",), "supplier", ("s_suppkey",)),
    ),
)

ORDERS = TableSchema(
    "orders",
    (
        Column("o_orderkey", I),
        Column("o_custkey", I),
        Column("o_orderstatus", V, width_bytes=1),
        Column("o_totalprice", D),
        Column("o_orderdate", DT),
        Column("o_orderpriority", V, width_bytes=15),
        Column("o_clerk", V, width_bytes=15),
        Column("o_shippriority", I),
        Column("o_comment", V, width_bytes=40),
    ),
    primary_key=("o_orderkey",),
    foreign_keys=(ForeignKey(("o_custkey",), "customer", ("c_custkey",)),),
)

LINEITEM = TableSchema(
    "lineitem",
    (
        Column("l_orderkey", I),
        Column("l_partkey", I),
        Column("l_suppkey", I),
        Column("l_linenumber", I),
        Column("l_quantity", D),
        Column("l_extendedprice", D),
        Column("l_discount", D),
        Column("l_tax", D),
        Column("l_returnflag", V, width_bytes=1),
        Column("l_linestatus", V, width_bytes=1),
        Column("l_shipdate", DT),
        Column("l_commitdate", DT),
        Column("l_receiptdate", DT),
        Column("l_shipinstruct", V, width_bytes=25),
        Column("l_shipmode", V, width_bytes=10),
        Column("l_comment", V, width_bytes=25),
    ),
    primary_key=("l_orderkey", "l_linenumber"),
    foreign_keys=(
        ForeignKey(("l_orderkey",), "orders", ("o_orderkey",)),
        ForeignKey(("l_partkey", "l_suppkey"), "partsupp", ("ps_partkey", "ps_suppkey")),
        ForeignKey(("l_partkey",), "part", ("p_partkey",)),
        ForeignKey(("l_suppkey",), "supplier", ("s_suppkey",)),
    ),
)

ALL_TABLES = (REGION, NATION, SUPPLIER, CUSTOMER, PART, PARTSUPP, ORDERS, LINEITEM)

#: Base row counts at scale factor 1.0 (TPC-H specification).
BASE_ROW_COUNTS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}


def row_count(table: str, scale: float) -> int:
    base = BASE_ROW_COUNTS[table]
    if table in ("region", "nation"):
        return base  # fixed-size tables
    return max(1, int(base * scale))
