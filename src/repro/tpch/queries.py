"""The six TPC-H queries used in the paper's evaluation (§7.1), adapted
to the engine's SQL subset.

The paper groups them by join complexity: Q3 (j=2) and Q10 (j=3) are low,
Q5 and Q9 (j=5) medium, Q8 (j=7) and Q2 (13 join predicates across its
two blocks) high.  Adaptations preserve each query's join graph,
predicates, and aggregation structure:

* Q2's correlated MIN subquery is unnested into a grouped derived table
  (the standard decorrelation; the optimizer plans both blocks in one
  memo with the aggregation as a reordering barrier);
* Q8's CASE-based market-share numerator is simplified to the BRAZIL
  volume per year (same joins, same grouping), and the derivable
  transferred predicate ``l_shipdate <= DATE '1997-05-01'`` is added (the
  order-date window ends 1996-12-31 and ship dates trail order dates by at
  most 121 days in the data generator — a routine implied-predicate
  optimization that keeps results identical);
* EXTRACT(YEAR ...) is written as YEAR(...).
"""

from __future__ import annotations

Q2 = """
SELECT s.s_acctbal, s.s_name, n.n_name, p.p_partkey, p.p_mfgr, s.s_address, s.s_phone
FROM part p, supplier s, partsupp ps, nation n, region r,
     (SELECT ps2.ps_partkey AS minpartkey, MIN(ps2.ps_supplycost) AS minsupplycost
      FROM partsupp ps2, supplier s2, nation n2, region r2
      WHERE s2.s_suppkey = ps2.ps_suppkey AND s2.s_nationkey = n2.n_nationkey
        AND n2.n_regionkey = r2.r_regionkey AND r2.r_name = 'EUROPE'
      GROUP BY ps2.ps_partkey) AS mc
WHERE p.p_partkey = ps.ps_partkey AND s.s_suppkey = ps.ps_suppkey
  AND p.p_size = 15 AND p.p_type LIKE '%BRASS'
  AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
  AND r.r_name = 'EUROPE'
  AND ps.ps_partkey = mc.minpartkey AND ps.ps_supplycost = mc.minsupplycost
ORDER BY s_acctbal DESC, n_name, s_name, p_partkey
LIMIT 100
"""

Q3 = """
SELECT l.l_orderkey, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue,
       o.o_orderdate, o.o_shippriority
FROM customer c, orders o, lineitem l
WHERE c.c_mktsegment = 'BUILDING'
  AND c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
  AND o.o_orderdate < DATE '1995-03-15' AND l.l_shipdate > DATE '1995-03-15'
GROUP BY l.l_orderkey, o.o_orderdate, o.o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10
"""

Q5 = """
SELECT n.n_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
FROM customer c, orders o, lineitem l, supplier s, nation n, region r
WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
  AND l.l_suppkey = s.s_suppkey AND c.c_nationkey = s.s_nationkey
  AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
  AND r.r_name = 'ASIA'
  AND o.o_orderdate >= DATE '1994-01-01' AND o.o_orderdate < DATE '1995-01-01'
GROUP BY n.n_name
ORDER BY revenue DESC
"""

Q8 = """
SELECT YEAR(o.o_orderdate) AS o_year,
       SUM(l.l_extendedprice * (1 - l.l_discount)) AS volume
FROM part p, supplier s, lineitem l, orders o, customer c,
     nation n1, nation n2, region r
WHERE p.p_partkey = l.l_partkey AND s.s_suppkey = l.l_suppkey
  AND l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey
  AND c.c_nationkey = n1.n_nationkey AND n1.n_regionkey = r.r_regionkey
  AND r.r_name = 'AMERICA' AND s.s_nationkey = n2.n_nationkey
  AND o.o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
  AND l.l_shipdate <= DATE '1997-05-01'
  AND p.p_type = 'ECONOMY ANODIZED STEEL' AND n2.n_name = 'BRAZIL'
GROUP BY YEAR(o.o_orderdate)
ORDER BY o_year
"""

Q9 = """
SELECT n.n_name AS nation, YEAR(o.o_orderdate) AS o_year,
       SUM(l.l_extendedprice * (1 - l.l_discount) - ps.ps_supplycost * l.l_quantity)
           AS sum_profit
FROM part p, supplier s, lineitem l, partsupp ps, orders o, nation n
WHERE s.s_suppkey = l.l_suppkey AND ps.ps_suppkey = l.l_suppkey
  AND ps.ps_partkey = l.l_partkey AND p.p_partkey = l.l_partkey
  AND o.o_orderkey = l.l_orderkey AND s.s_nationkey = n.n_nationkey
  AND p.p_name LIKE '%green%'
GROUP BY n.n_name, YEAR(o.o_orderdate)
ORDER BY nation, o_year DESC
"""

Q10 = """
SELECT c.c_custkey, c.c_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue,
       c.c_acctbal, n.n_name, c.c_address, c.c_phone
FROM customer c, orders o, lineitem l, nation n
WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
  AND o.o_orderdate >= DATE '1993-10-01' AND o.o_orderdate < DATE '1994-01-01'
  AND l.l_returnflag = 'R' AND c.c_nationkey = n.n_nationkey
GROUP BY c.c_custkey, c.c_name, c.c_acctbal, n.n_name, c.c_address, c.c_phone
ORDER BY revenue DESC
LIMIT 20
"""

#: Queries keyed by their paper name, in paper order.
QUERIES: dict[str, str] = {
    "Q2": Q2,
    "Q3": Q3,
    "Q5": Q5,
    "Q8": Q8,
    "Q9": Q9,
    "Q10": Q10,
}

#: Join complexity (number of join predicates) per query, from the paper.
JOIN_COMPLEXITY = {"Q2": 13, "Q3": 2, "Q5": 5, "Q8": 7, "Q9": 5, "Q10": 3}


# ---------------------------------------------------------------------------
# Additional adapted queries (not part of the paper's six; used by tests
# and examples to exercise single-table aggregation, OR-heavy predicates,
# and the pricing-summary shape).
# ---------------------------------------------------------------------------

Q1 = """
SELECT l.l_returnflag, l.l_linestatus,
       SUM(l.l_quantity) AS sum_qty,
       SUM(l.l_extendedprice) AS sum_base_price,
       SUM(l.l_extendedprice * (1 - l.l_discount)) AS sum_disc_price,
       AVG(l.l_quantity) AS avg_qty,
       AVG(l.l_extendedprice) AS avg_price,
       AVG(l.l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem l
WHERE l.l_shipdate <= DATE '1998-09-02'
GROUP BY l.l_returnflag, l.l_linestatus
ORDER BY l_returnflag, l_linestatus
"""

Q6 = """
SELECT SUM(l.l_extendedprice * l.l_discount) AS revenue
FROM lineitem l
WHERE l.l_shipdate >= DATE '1994-01-01' AND l.l_shipdate < DATE '1995-01-01'
  AND l.l_discount BETWEEN 0.05 AND 0.07 AND l.l_quantity < 24
"""

#: Q7 keeps the two-nation join graph; the CASE-free adaptation fixes the
#: (supplier, customer) nation pair via an OR of the two orientations and
#: groups by both nation names and the shipping year.
Q7 = """
SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
       YEAR(l.l_shipdate) AS l_year,
       SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
FROM supplier s, lineitem l, orders o, customer c, nation n1, nation n2
WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey
  AND c.c_custkey = o.o_custkey AND s.s_nationkey = n1.n_nationkey
  AND c.c_nationkey = n2.n_nationkey
  AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY')
       OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))
  AND l.l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
GROUP BY n1.n_name, n2.n_name, YEAR(l.l_shipdate)
ORDER BY supp_nation, cust_nation, l_year
"""

#: Extra queries beyond the paper's evaluation set.
EXTRA_QUERIES: dict[str, str] = {"Q1": Q1, "Q6": Q6, "Q7": Q7}
