"""Policy-expression workloads for the TPC-H evaluation (paper §7.1).

Two kinds:

* **Curated sets** (:func:`curated_policies`) — hand-designed T / C / CR /
  CR+A sets in the spirit of the paper's Table 3, engineered so that (a)
  every one of the six evaluation queries has a compliant plan, and (b)
  the *traditional* optimizer's cost-optimal plan is non-compliant for the
  same queries as the paper's Fig. 5(a): Q2 under every set (the Part
  table may not be shipped to Africa, where the large Partsupp lives),
  plus Q3 and Q10 under CR and CR+A (Orders may reach North America only
  for 1994-and-later rows, which Q3/Q10 do not imply; their compliant
  plans instead ship filtered — or under CR+A pre-aggregated, as in the
  paper's Fig. 5(e) — Lineitem data to Europe).

* **A generator** (:class:`PolicyGenerator`) — instantiates the paper's
  four expression templates with seeded randomness for the 400-ad-hoc-
  query effectiveness experiment and the scalability studies.  Following
  §7.1 ("all policy expressions are of a form that there always exists at
  least one compliant QEP"), the generator can emit *hub coverage*: one
  unconditional full-column expression per table targeting a designated
  hub location, guaranteeing feasibility of every query.
"""

from __future__ import annotations

import random

from ..catalog import Catalog
from ..policy import PolicyCatalog
from .distribution import LOCATIONS
from .schema import ALL_TABLES

# ---------------------------------------------------------------------------
# Curated sets (Fig. 5(a) / Table 3)
# ---------------------------------------------------------------------------

_SET_T = [
    "ship * from nation to *",
    "ship * from region to *",
    "ship * from customer to Europe, NorthAmerica",
    "ship * from orders to Europe, NorthAmerica",
    "ship * from supplier to *",
    "ship * from partsupp to Africa, Asia, NorthAmerica, Europe",
    "ship * from part to Asia, NorthAmerica, Europe",
    "ship * from lineitem to NorthAmerica, Europe, Asia",
]

_CUSTOMER_COLS = (
    "c_custkey, c_name, c_address, c_phone, c_acctbal, c_nationkey, c_mktsegment"
)
_ORDER_COLS = "o_custkey, o_orderkey, o_orderdate, o_totalprice, o_shippriority"
_SUPPLIER_COLS = "s_suppkey, s_name, s_address, s_phone, s_acctbal, s_nationkey"
_PARTSUPP_COLS = "ps_partkey, ps_suppkey, ps_supplycost, ps_availqty"
_PART_COLS = "p_partkey, p_name, p_mfgr, p_brand, p_type, p_size, p_retailprice"
_LINEITEM_COLS = (
    "l_orderkey, l_partkey, l_suppkey, l_quantity, l_extendedprice, "
    "l_discount, l_shipdate, l_returnflag"
)

_SET_C = [
    "ship n_nationkey, n_name, n_regionkey from nation to *",
    "ship r_regionkey, r_name from region to *",
    f"ship {_CUSTOMER_COLS} from customer to Europe, NorthAmerica",
    f"ship {_ORDER_COLS} from orders to Europe, NorthAmerica",
    f"ship {_SUPPLIER_COLS} from supplier to *",
    f"ship {_PARTSUPP_COLS} from partsupp to Africa, Asia, NorthAmerica, Europe",
    f"ship {_PART_COLS} from part to Asia, NorthAmerica, Europe",
    f"ship {_LINEITEM_COLS} from lineitem to NorthAmerica, Europe, Asia",
    "ship c_comment from customer to Europe",
    "ship o_clerk, o_orderpriority from orders to Europe",
]

_SET_CR = [
    "ship n_nationkey, n_name, n_regionkey from nation to *",
    "ship r_regionkey, r_name from region to *",
    f"ship {_CUSTOMER_COLS} from customer to Europe, NorthAmerica",
    "ship o_orderkey, o_orderdate from orders to *",
    # Row condition: only 1994-and-later orders may leave for North
    # America — Q3 (no lower date bound) and Q10 (1993 window) cannot
    # satisfy it, so their cost-optimal plans become non-compliant.
    f"ship {_ORDER_COLS} from orders to NorthAmerica "
    "where o_orderdate >= DATE '1994-01-01'",
    f"ship {_SUPPLIER_COLS} from supplier to *",
    f"ship {_PARTSUPP_COLS} from partsupp to Africa, Asia, NorthAmerica, Europe",
    f"ship {_PART_COLS} from part to Asia, NorthAmerica, Europe",
    f"ship {_LINEITEM_COLS} from lineitem to NorthAmerica, Europe, Asia",
    # Paper's e4 flavor (Table 3): parts may additionally reach Africa,
    # but only large or copper ones — Q2's BRASS/size-15 parts do not qualify.
    f"ship {_PART_COLS} from part to Africa "
    "where p_size > 40 OR p_type LIKE '%COPPER%'",
]

_SET_CRA = _SET_CR[:8] + [
    # Raw lineitem rows may reach Europe only for closed shipping windows
    # (Q8's bounded window qualifies; Q3/Q10's open-ended predicates do
    # not) ...
    f"ship {_LINEITEM_COLS} from lineitem to NorthAmerica, Asia",
    f"ship {_LINEITEM_COLS} from lineitem to Europe "
    "where l_shipdate <= DATE '1997-05-01'",
    # ... otherwise only aggregated revenue data may (the paper's e5,
    # Table 3) — the compliant optimizer must push the revenue aggregation
    # below the SHIP (Fig. 5(e)) instead of shipping raw rows.
    "ship l_extendedprice, l_discount as aggregates sum from lineitem "
    "to Europe group by l_suppkey, l_orderkey",
]

CURATED_SETS = {"T": _SET_T, "C": _SET_C, "CR": _SET_CR, "CR+A": _SET_CRA}


def curated_policies(catalog: Catalog, template: str) -> PolicyCatalog:
    """The curated expression set for ``template`` ∈ {T, C, CR, CR+A}."""
    policies = PolicyCatalog(catalog)
    for text in CURATED_SETS[template]:
        policies.add_text(text)
    return policies


# ---------------------------------------------------------------------------
# Template-driven generator
# ---------------------------------------------------------------------------

#: Per-table attribute properties: the generator's "property file" (§7.1).
#: aggregatable columns are numeric measures; groupable columns are keys or
#: low-cardinality attributes; each range entry is a ready-made condition.
TABLE_PROPERTIES: dict[str, dict[str, list[str]]] = {
    "customer": {
        "aggregatable": ["c_acctbal"],
        "groupable": ["c_nationkey", "c_mktsegment", "c_custkey"],
        "conditions": [
            "c_mktsegment = 'BUILDING'",
            "c_mktsegment = 'AUTOMOBILE'",
            "c_acctbal > 0",
            "c_nationkey < 10",
        ],
    },
    "orders": {
        "aggregatable": ["o_totalprice"],
        "groupable": ["o_custkey", "o_orderdate", "o_orderkey"],
        "conditions": [
            "o_orderdate >= DATE '1994-01-01'",
            "o_orderdate < DATE '1995-01-01'",
            "o_totalprice > 50000",
            "o_orderstatus = 'F'",
        ],
    },
    "lineitem": {
        "aggregatable": ["l_quantity", "l_extendedprice", "l_discount"],
        "groupable": ["l_orderkey", "l_suppkey", "l_partkey"],
        "conditions": [
            "l_shipdate > DATE '1995-03-15'",
            "l_returnflag = 'R'",
            "l_quantity < 25",
            "l_discount <= 0.05",
        ],
    },
    "supplier": {
        "aggregatable": ["s_acctbal"],
        "groupable": ["s_nationkey", "s_suppkey"],
        "conditions": ["s_acctbal > 0", "s_nationkey < 10"],
    },
    "partsupp": {
        "aggregatable": ["ps_supplycost", "ps_availqty"],
        "groupable": ["ps_partkey", "ps_suppkey"],
        "conditions": ["ps_availqty > 100", "ps_supplycost < 500"],
    },
    "part": {
        "aggregatable": ["p_retailprice", "p_size"],
        "groupable": ["p_brand", "p_mfgr", "p_partkey"],
        "conditions": [
            "p_size > 40 OR p_type LIKE '%COPPER%'",
            "p_size = 15",
            "p_retailprice < 1500",
        ],
    },
    "nation": {
        "aggregatable": [],
        "groupable": ["n_nationkey", "n_regionkey"],
        "conditions": ["n_regionkey < 3"],
    },
    "region": {
        "aggregatable": [],
        "groupable": ["r_regionkey"],
        "conditions": ["r_name = 'EUROPE'"],
    },
}

_SCHEMAS = {schema.name: schema for schema in ALL_TABLES}


class PolicyGenerator:
    """Instantiates policy-expression templates (T / C / CR / CR+A)."""

    def __init__(
        self,
        catalog: Catalog,
        seed: int = 7,
        locations: tuple[str, ...] = LOCATIONS,
        hub: str | None = "NorthAmerica",
    ) -> None:
        self.catalog = catalog
        self.rng = random.Random(seed)
        self.locations = locations
        self.hub = hub

    # -- public API --------------------------------------------------------------

    def generate(self, template: str, count: int) -> PolicyCatalog:
        """Generate ``count`` expressions of ``template``; with a hub
        configured, coverage expressions guaranteeing query feasibility are
        included in the count."""
        policies = PolicyCatalog(self.catalog)
        for text in self.expression_texts(template, count):
            policies.add_text(text)
        return policies

    def expression_texts(self, template: str, count: int) -> list[str]:
        texts: list[str] = []
        if self.hub is not None:
            texts.extend(self._hub_coverage())
        while len(texts) < count:
            texts.append(self._expression(template))
        return texts[:max(count, len(texts))]

    # -- internals -----------------------------------------------------------------

    def _hub_coverage(self) -> list[str]:
        """One unconditional full-table expression per table, to the hub."""
        return [
            f"ship * from {table} to {self.hub}"
            for table in sorted(_SCHEMAS)
        ]

    def _random_table(self) -> str:
        return self.rng.choice(sorted(_SCHEMAS))

    def _random_destinations(self) -> str:
        if self.rng.random() < 0.15:
            return "*"
        k = self.rng.randint(1, max(1, len(self.locations) - 1))
        return ", ".join(sorted(self.rng.sample(list(self.locations), k)))

    def _random_columns(self, table: str) -> list[str]:
        columns = list(_SCHEMAS[table].column_names)
        k = self.rng.randint(max(1, len(columns) // 3), len(columns))
        return sorted(self.rng.sample(columns, k))

    def _expression(self, template: str) -> str:
        table = self._random_table()
        destinations = self._random_destinations()
        if template == "T":
            return f"ship * from {table} to {destinations}"
        columns = self._random_columns(table)
        text = f"ship {', '.join(columns)} from {table} to {destinations}"
        if template == "C":
            return text
        properties = TABLE_PROPERTIES[table]
        condition = self.rng.choice(properties["conditions"])
        if template == "CR":
            return f"{text} where {condition}"
        # CR+A: half aggregate expressions, half CR expressions.
        aggregatable = properties["aggregatable"]
        if not aggregatable or self.rng.random() < 0.5:
            return f"{text} where {condition}"
        k = self.rng.randint(1, len(aggregatable))
        attrs = sorted(self.rng.sample(aggregatable, k))
        functions = sorted(
            self.rng.sample(["sum", "avg", "min", "max"], self.rng.randint(1, 2))
        )
        group_cols = sorted(
            self.rng.sample(
                properties["groupable"],
                self.rng.randint(1, len(properties["groupable"])),
            )
        )
        expression = (
            f"ship {', '.join(attrs)} as aggregates {', '.join(functions)} "
            f"from {table} to {destinations} group by {', '.join(group_cols)}"
        )
        if self.rng.random() < 0.5:
            expression += f" where {self.rng.choice(properties['conditions'])}"
        return expression


def locations_sweep_policies(
    catalog: Catalog, n_locations: int, extra_location_prefix: str = "X"
) -> tuple[Catalog, PolicyCatalog]:
    """Policies for the Fig. 8 experiment: eight ``ship * from t to l1..ln``
    expressions where the destination list has ``n_locations`` entries.

    Locations beyond the five real ones are synthesized (each backed by an
    empty database so the catalog knows them).
    """
    from .distribution import build_catalog

    catalog = build_catalog()  # fresh catalog so synthetic locations are local
    for i in range(max(0, n_locations - len(LOCATIONS))):
        catalog.add_database(f"dbx{i}", f"{extra_location_prefix}{i}")
    all_locations = catalog.locations[:n_locations]
    destination_list = ", ".join(all_locations)
    policies = PolicyCatalog(catalog)
    for table in sorted(_SCHEMAS):
        policies.add_text(f"ship * from {table} to {destination_list}")
    return catalog, policies
