"""JSON codec for shipped payload descriptors.

A SHIP's *payload descriptor* is the logical subquery the shipped data
is the result of — exactly the object the compliance machinery reasons
about (:func:`repro.optimizer.validator.to_logical` strips the physical
details; SHIPs are transparent because they move data without changing
it).  Embedding the descriptor in every ship event makes a trace
self-contained: the auditor re-derives the payload's permitted
destinations from the descriptor and the policy set alone, without the
plan, the optimizer, or the run that produced the trace.

Encoding is lossless for everything compliance depends on: the decoded
tree compares *structurally equal* to the original (frozen dataclasses),
so provenance (:class:`~repro.expr.BaseColumn`), predicates (needed for
policy-condition implication), aggregate structure, and scan locations
all survive the round trip.  Dates are carried as ISO strings and
revived by declared type; enums by value; tuples as JSON arrays.

Decoding raises :class:`~repro.errors.TraceFormatError` on any
malformed descriptor — an auditor must fail loudly on a trace it cannot
interpret, never skip it.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any

from ..datatypes import DataType
from ..errors import TraceFormatError
from ..expr import (
    AggregateCall,
    AggregateFunction,
    And,
    Arithmetic,
    ArithmeticOp,
    BaseColumn,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
)
from ..plan import (
    Field,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalUnion,
)

# -- expressions ---------------------------------------------------------------


def encode_expression(expr: Expression) -> dict[str, Any]:
    if isinstance(expr, Literal):
        value = expr.value
        if isinstance(value, (_dt.date, _dt.datetime)):
            value = value.isoformat()
        return {"e": "lit", "v": value, "t": expr.dtype.value}
    if isinstance(expr, ColumnRef):
        return {
            "e": "col",
            "name": expr.name,
            "t": expr.dtype.value,
            "base": _encode_base(expr.base),
        }
    if isinstance(expr, Comparison):
        return {
            "e": "cmp",
            "op": expr.op.value,
            "l": encode_expression(expr.left),
            "r": encode_expression(expr.right),
        }
    if isinstance(expr, And):
        return {"e": "and", "ops": [encode_expression(o) for o in expr.operands]}
    if isinstance(expr, Or):
        return {"e": "or", "ops": [encode_expression(o) for o in expr.operands]}
    if isinstance(expr, Not):
        return {"e": "not", "op": encode_expression(expr.operand)}
    if isinstance(expr, Arithmetic):
        return {
            "e": "arith",
            "op": expr.op.value,
            "l": encode_expression(expr.left),
            "r": encode_expression(expr.right),
        }
    if isinstance(expr, Negate):
        return {"e": "neg", "op": encode_expression(expr.operand)}
    if isinstance(expr, Like):
        return {
            "e": "like",
            "op": encode_expression(expr.operand),
            "pattern": expr.pattern,
            "negated": expr.negated,
        }
    if isinstance(expr, InList):
        return {
            "e": "in",
            "op": encode_expression(expr.operand),
            "values": [encode_expression(v) for v in expr.values],
            "negated": expr.negated,
        }
    if isinstance(expr, IsNull):
        return {
            "e": "isnull",
            "op": encode_expression(expr.operand),
            "negated": expr.negated,
        }
    if isinstance(expr, FunctionCall):
        return {
            "e": "func",
            "name": expr.name,
            "args": [encode_expression(a) for a in expr.args],
        }
    if isinstance(expr, AggregateCall):
        return {
            "e": "agg",
            "func": expr.func.value,
            "arg": None if expr.argument is None else encode_expression(expr.argument),
        }
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def decode_expression(data: Any) -> Expression:
    if not isinstance(data, dict):
        raise TraceFormatError(f"expression descriptor must be an object, got {data!r}")
    tag = data.get("e")
    try:
        if tag == "lit":
            dtype = DataType(data["t"])
            value = data["v"]
            if dtype == DataType.DATE and isinstance(value, str):
                value = _dt.date.fromisoformat(value)
            return Literal(value, dtype)
        if tag == "col":
            return ColumnRef(
                data["name"], DataType(data["t"]), _decode_base(data.get("base"))
            )
        if tag == "cmp":
            return Comparison(
                ComparisonOp(data["op"]),
                decode_expression(data["l"]),
                decode_expression(data["r"]),
            )
        if tag == "and":
            return And(tuple(decode_expression(o) for o in data["ops"]))
        if tag == "or":
            return Or(tuple(decode_expression(o) for o in data["ops"]))
        if tag == "not":
            return Not(decode_expression(data["op"]))
        if tag == "arith":
            return Arithmetic(
                ArithmeticOp(data["op"]),
                decode_expression(data["l"]),
                decode_expression(data["r"]),
            )
        if tag == "neg":
            return Negate(decode_expression(data["op"]))
        if tag == "like":
            return Like(
                decode_expression(data["op"]), data["pattern"], data["negated"]
            )
        if tag == "in":
            values = tuple(decode_expression(v) for v in data["values"])
            if not all(isinstance(v, Literal) for v in values):
                raise TraceFormatError("IN-list values must be literals")
            return InList(decode_expression(data["op"]), values, data["negated"])
        if tag == "isnull":
            return IsNull(decode_expression(data["op"]), data["negated"])
        if tag == "func":
            return FunctionCall(
                data["name"], tuple(decode_expression(a) for a in data["args"])
            )
        if tag == "agg":
            arg = data["arg"]
            return AggregateCall(
                AggregateFunction(data["func"]),
                None if arg is None else decode_expression(arg),
            )
    except TraceFormatError:
        raise
    except (KeyError, ValueError, TypeError) as error:
        raise TraceFormatError(
            f"malformed {tag!r} expression descriptor: {error}"
        ) from error
    raise TraceFormatError(f"unknown expression tag {tag!r}")


def _encode_base(base: BaseColumn | None) -> list[str] | None:
    if base is None:
        return None
    return [base.database, base.table, base.column]


def _decode_base(data: Any) -> BaseColumn | None:
    if data is None:
        return None
    if not (isinstance(data, list) and len(data) == 3):
        raise TraceFormatError(f"malformed provenance descriptor {data!r}")
    return BaseColumn(*data)


# -- fields --------------------------------------------------------------------


def _encode_field(field: Field) -> dict[str, Any]:
    return {
        "name": field.name,
        "t": field.dtype.value,
        "base": _encode_base(field.base),
        "width": field.width,
    }


def _decode_field(data: Any) -> Field:
    try:
        return Field(
            data["name"],
            DataType(data["t"]),
            _decode_base(data.get("base")),
            data["width"],
        )
    except TraceFormatError:
        raise
    except (KeyError, ValueError, TypeError) as error:
        raise TraceFormatError(f"malformed field descriptor: {error}") from error


# -- logical plans -------------------------------------------------------------


def encode_logical(plan: LogicalPlan) -> dict[str, Any]:
    if isinstance(plan, LogicalScan):
        return {
            "o": "scan",
            "table": plan.table,
            "database": plan.database,
            "location": plan.location,
            "alias": plan.alias,
            "fields": [_encode_field(f) for f in plan.scan_fields],
        }
    if isinstance(plan, LogicalFilter):
        return {
            "o": "filter",
            "child": encode_logical(plan.child),
            "predicate": encode_expression(plan.predicate),
        }
    if isinstance(plan, LogicalProject):
        return {
            "o": "project",
            "child": encode_logical(plan.child),
            "exprs": [encode_expression(e) for e in plan.exprs],
            "names": list(plan.names),
        }
    if isinstance(plan, LogicalJoin):
        return {
            "o": "join",
            "left": encode_logical(plan.left),
            "right": encode_logical(plan.right),
            "condition": None
            if plan.condition is None
            else encode_expression(plan.condition),
        }
    if isinstance(plan, LogicalAggregate):
        return {
            "o": "aggregate",
            "child": encode_logical(plan.child),
            "keys": [encode_expression(k) for k in plan.group_keys],
            "aggs": [encode_expression(a) for a in plan.aggregates],
            "names": list(plan.agg_names),
        }
    if isinstance(plan, LogicalUnion):
        return {"o": "union", "inputs": [encode_logical(i) for i in plan.inputs]}
    if isinstance(plan, LogicalSort):
        return {
            "o": "sort",
            "child": encode_logical(plan.child),
            "keys": [[name, desc] for name, desc in plan.sort_keys],
            "limit": plan.limit,
        }
    raise TypeError(f"unknown logical operator {type(plan).__name__}")


def decode_logical(data: Any) -> LogicalPlan:
    if not isinstance(data, dict):
        raise TraceFormatError(f"payload descriptor must be an object, got {data!r}")
    tag = data.get("o")
    try:
        if tag == "scan":
            return LogicalScan(
                table=data["table"],
                database=data["database"],
                location=data["location"],
                alias=data["alias"],
                scan_fields=tuple(_decode_field(f) for f in data["fields"]),
            )
        if tag == "filter":
            return LogicalFilter(
                decode_logical(data["child"]), decode_expression(data["predicate"])
            )
        if tag == "project":
            return LogicalProject(
                decode_logical(data["child"]),
                tuple(decode_expression(e) for e in data["exprs"]),
                tuple(data["names"]),
            )
        if tag == "join":
            condition = data["condition"]
            return LogicalJoin(
                decode_logical(data["left"]),
                decode_logical(data["right"]),
                None if condition is None else decode_expression(condition),
            )
        if tag == "aggregate":
            keys = tuple(decode_expression(k) for k in data["keys"])
            aggs = tuple(decode_expression(a) for a in data["aggs"])
            if not all(isinstance(k, ColumnRef) for k in keys):
                raise TraceFormatError("group keys must be column references")
            if not all(isinstance(a, AggregateCall) for a in aggs):
                raise TraceFormatError("aggregates must be aggregate calls")
            return LogicalAggregate(
                decode_logical(data["child"]), keys, aggs, tuple(data["names"])
            )
        if tag == "union":
            return LogicalUnion(tuple(decode_logical(i) for i in data["inputs"]))
        if tag == "sort":
            return LogicalSort(
                decode_logical(data["child"]),
                tuple((name, desc) for name, desc in data["keys"]),
                data["limit"],
            )
    except TraceFormatError:
        raise
    except (KeyError, ValueError, TypeError) as error:
        raise TraceFormatError(
            f"malformed {tag!r} payload descriptor: {error}"
        ) from error
    raise TraceFormatError(f"unknown payload operator {tag!r}")


def encode_payload(physical: Any) -> dict[str, Any]:
    """Descriptor of the logical subquery a physical subtree computes —
    what a SHIP above it would move.  (Imported lazily: the optimizer
    package itself emits trace events, so a module-level import here
    would be circular.)"""
    from ..optimizer.validator import to_logical

    return encode_logical(to_logical(physical))


# -- freshness annotations -----------------------------------------------------
#
# When a freshness policy is active, every scan descriptor inside a
# shipped payload is stamped with the read it committed: the simulated
# instant (``read_at``) and the staleness the copy had then
# (``staleness_at_read``).  The keys ride alongside the structural
# fields — ``decode_logical`` ignores them, so annotated payloads stay
# decodable by pre-freshness readers — and the auditor re-derives each
# claim independently from the catalog's refresh schedules.

#: Scan-descriptor keys carrying the freshness claim.
PAYLOAD_READ_KEYS = ("read_at", "staleness_at_read")


def annotate_payload_reads(payload: dict[str, Any], reads) -> dict[str, Any]:
    """A copy of ``payload`` with each scan descriptor stamped by its
    matching committed read (``reads`` is an iterable of objects with
    ``database``/``table``/``site``/``at_seconds``/``staleness_seconds``,
    i.e. :class:`~repro.execution.metrics.ScanRead`).  Scans without a
    matching read (primary reads) are left unstamped."""
    by_copy = {(r.database, r.table.lower(), r.site): r for r in reads}

    def walk(node: Any) -> Any:
        if isinstance(node, dict):
            out = {key: walk(value) for key, value in node.items()}
            if out.get("o") == "scan":
                read = by_copy.get(
                    (out.get("database"), str(out.get("table", "")).lower(), out.get("location"))
                )
                if read is not None:
                    out["read_at"] = read.at_seconds
                    out["staleness_at_read"] = read.staleness_seconds
            return out
        if isinstance(node, list):
            return [walk(item) for item in node]
        return node

    return walk(payload)


def payload_reads(payload: dict[str, Any]) -> list[dict[str, Any]]:
    """Every annotated scan descriptor in ``payload`` (each carries the
    structural scan keys plus :data:`PAYLOAD_READ_KEYS`), in tree
    order.  Empty for un-annotated payloads."""
    found: list[dict[str, Any]] = []

    def walk(node: Any) -> None:
        if isinstance(node, dict):
            if node.get("o") == "scan" and "staleness_at_read" in node:
                found.append(node)
            for value in node.values():
                walk(value)
        elif isinstance(node, list):
            for item in node:
                walk(item)

    walk(payload)
    return found


def strip_payload_reads(payload: dict[str, Any]) -> dict[str, Any]:
    """A copy of ``payload`` without freshness annotations — the purely
    structural descriptor, suitable as a cache key (re-reads of the same
    subquery at different instants are compliance-identical)."""

    def walk(node: Any) -> Any:
        if isinstance(node, dict):
            return {
                key: walk(value)
                for key, value in node.items()
                if key not in PAYLOAD_READ_KEYS
            }
        if isinstance(node, list):
            return [walk(item) for item in node]
        return node

    return walk(payload)
