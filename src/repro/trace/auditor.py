"""Post-hoc compliance auditing of execution traces.

:class:`ComplianceAuditor` replays a trace against a policy set and
schema and checks the end-to-end invariant behind the paper's Theorem 1
at the level of *observed behavior*: every SHIP attempt's destination —
delivered or not, first try or retry, before or after failover — must
lie in the permitted-location set of the payload it tried to move.

The auditor is deliberately **independent of the optimizer and the
execution engine**: it sees only the serialized events and re-derives
each payload's permitted destinations from the embedded payload
descriptor (:mod:`repro.trace.codec`) and the policy set, re-running
the Algorithm-1 evaluator per sub-payload exactly like the content-based
validator does:

* a scan's result is permitted at the scan's site, plus whatever 𝒜
  grants its (single-database) subquery;
* an internal operator's result is permitted wherever *all* of its
  inputs are permitted, plus the 𝒜 grant of its own subquery (masking
  projections and aggregations can legalize more sites than their
  inputs had — the paper's Fig. 1(b) masking pattern);
* grants apply only to single-database, union-free subqueries —
  Algorithm 1's domain.

Crucially this set depends only on the payload's *content* and the
(immovable) scan sites, never on where operators were placed — so the
verdict is meaningful even for transfers attempted by failover-re-placed
fragments, and a corrupted placement cannot launder data by moving the
operators along with it.

One placement fact *is* checked against the schema: every scan in every
payload must sit at a site legally holding the data — the stored
table's home, or a *registered replica* whose site the auditor
independently re-confirms inside 𝒜 of the bare full-table scan.  A
scan at an unregistered site is a ``displaced-scan`` (a runtime that
"relocated" a scan would read the table remotely without any SHIP
event ever crossing the wire — the one movement a transfer-level audit
alone could not see); a scan at a registered replica the policies do
not admit is a ``non-compliant-replica``.  Post-failover re-reads are
covered identically: a replica-kind failover re-derives the payload
descriptor, so the replica actually read always shows up here.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..policy import PolicyCatalog, PolicyEvaluator, describe_local_query
from ..plan import LogicalPlan, LogicalScan, LogicalUnion
from .codec import decode_logical
from .events import RecoveryEvent, ShipEvent, TraceEvent
from .recorder import read_trace


@dataclass(frozen=True)
class ComplianceViolation:
    """One audited transfer (or scan placement) the policies forbid."""

    query: int
    at: float
    #: "forbidden-destination" | "displaced-scan" |
    #: "non-compliant-replica" | "unauditable"
    category: str
    source: str
    target: str
    permitted: tuple[str, ...]
    message: str

    def __str__(self) -> str:
        return (
            f"[query {self.query} @ t={self.at:.3f}s] {self.category}: "
            f"{self.message}"
        )


@dataclass
class AuditReport:
    """The auditor's verdict over one trace."""

    events: int = 0
    queries: int = 0
    #: SHIP attempts audited (all outcomes, including failed attempts).
    attempts: int = 0
    #: Audited attempts that crossed a border (source != target).
    cross_border: int = 0
    #: Distinct payload descriptors whose permitted sets were derived.
    payloads: int = 0
    #: Failovers recorded without a compliance guard (informational).
    unvalidated_recoveries: int = 0
    violations: list[ComplianceViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        verdict = (
            "COMPLIANT"
            if self.ok
            else f"NON-COMPLIANT ({len(self.violations)} violations)"
        )
        return (
            f"audit: {verdict} — {self.events} events, {self.queries} queries, "
            f"{self.attempts} transfer attempts ({self.cross_border} "
            f"cross-border), {self.payloads} distinct payloads"
        )


class ComplianceAuditor:
    """Audits traces against one policy catalog (and its schema)."""

    def __init__(self, policies: PolicyCatalog) -> None:
        self.policies = policies
        self.evaluator = PolicyEvaluator(policies)
        #: permitted-set cache keyed by canonical payload JSON — retry
        #: and failover attempts re-ship the same payload.
        self._permitted_cache: dict[str, frozenset[str]] = {}
        #: Independent replica re-derivation: per (database, table) the
        #: 𝒜 grant of the bare full-table scan, used to confirm that a
        #: registered replica's site was a permitted source.
        from ..policy.replicas import ReplicaResolver

        self._replicas = ReplicaResolver(policies.catalog, self.evaluator)

    # -- the permitted-location set of a payload --------------------------------

    def permitted_destinations(self, payload: LogicalPlan) -> frozenset[str]:
        """Everywhere the payload's content may legally be sent,
        re-derived bottom-up from the policy set (see module docstring)."""
        if isinstance(payload, LogicalScan):
            permitted = frozenset([payload.location])
        else:
            permitted = self.policies.all_locations
            for child in payload.children():
                permitted = permitted & self.permitted_destinations(child)
        return permitted | self._grant(payload)

    def _grant(self, payload: LogicalPlan) -> frozenset[str]:
        """Algorithm 1's verdict for the payload's subquery, or ∅ when
        the subquery is outside its domain (multi-database or union)."""
        if len(payload.source_databases) != 1:
            return frozenset()
        if any(isinstance(node, LogicalUnion) for node in payload.walk()):
            return frozenset()
        return self.evaluator.evaluate(describe_local_query(payload))

    # -- auditing ---------------------------------------------------------------

    def audit_events(self, events: Iterable[TraceEvent]) -> AuditReport:
        report = AuditReport()
        seen_queries: set[int] = set()
        seen_scans: set[tuple[int, str, str, str]] = set()
        for event in events:
            report.events += 1
            if event.query:
                seen_queries.add(event.query)
            if isinstance(event, RecoveryEvent) and not event.validated:
                report.unvalidated_recoveries += 1
            if not isinstance(event, ShipEvent):
                continue
            report.attempts += 1
            self._audit_ship(event, report, seen_scans)
        report.queries = len(seen_queries)
        report.payloads = len(self._permitted_cache)
        return report

    def audit_file(self, path: str) -> AuditReport:
        return self.audit_events(read_trace(path))

    def _audit_ship(
        self,
        event: ShipEvent,
        report: AuditReport,
        seen_scans: set[tuple[int, str, str, str]],
    ) -> None:
        if event.payload is None:
            report.violations.append(
                ComplianceViolation(
                    query=event.query,
                    at=event.at,
                    category="unauditable",
                    source=event.source,
                    target=event.target,
                    permitted=(),
                    message=(
                        f"ship {event.source} -> {event.target} carries no "
                        f"payload descriptor; compliance cannot be proven"
                    ),
                )
            )
            return
        key = json.dumps(event.payload, sort_keys=True, separators=(",", ":"))
        permitted = self._permitted_cache.get(key)
        payload = decode_logical(event.payload)
        self._audit_scan_sites(event, payload, report, seen_scans)
        if permitted is None:
            permitted = self.permitted_destinations(payload)
            self._permitted_cache[key] = permitted
        if event.source == event.target:
            return
        report.cross_border += 1
        if event.target not in permitted:
            report.violations.append(
                ComplianceViolation(
                    query=event.query,
                    at=event.at,
                    category="forbidden-destination",
                    source=event.source,
                    target=event.target,
                    permitted=tuple(sorted(permitted)),
                    message=(
                        f"attempt {event.attempt} ({event.outcome}) tried to "
                        f"ship {event.bytes} bytes of a payload permitted only "
                        f"at {sorted(permitted)} from {event.source} to "
                        f"{event.target}"
                    ),
                )
            )

    def _audit_scan_sites(
        self,
        event: ShipEvent,
        payload: LogicalPlan,
        report: AuditReport,
        seen_scans: set[tuple[int, str, str, str]],
    ) -> None:
        """Flag payload scans claiming an illegal source site
        (deduplicated per query and scan).

        Three-way verdict per scan: the stored table's home is always
        legal; a *registered* replica site is legal iff the auditor's
        own Algorithm-1 run over the bare full-table scan admits it
        (``non-compliant-replica`` otherwise); any other site is a
        ``displaced-scan``."""
        for node in payload.walk():
            if not isinstance(node, LogicalScan):
                continue
            try:
                stored = self.policies.catalog.stored_table(
                    node.database, node.table
                )
            except Exception:
                continue  # table unknown to this schema; nothing to check
            if stored.location == node.location:
                continue
            dedup = (event.query, node.database, node.table, node.location)
            if dedup in seen_scans:
                continue
            seen_scans.add(dedup)
            replica_sites = self.policies.catalog.replica_sites(
                node.database, node.table
            )
            if node.location in replica_sites:
                grant = self._replicas.full_scan_grant(node.database, node.table)
                if node.location in grant:
                    continue  # compliant replica read — permitted source
                report.violations.append(
                    ComplianceViolation(
                        query=event.query,
                        at=event.at,
                        category="non-compliant-replica",
                        source=stored.location,
                        target=node.location,
                        permitted=tuple(sorted(grant)),
                        message=(
                            f"payload reads the replica of "
                            f"{node.database}.{node.table} at "
                            f"{node.location!r}, but the dataflow policies "
                            f"only admit the table at {sorted(grant)}"
                        ),
                    )
                )
                continue
            report.violations.append(
                ComplianceViolation(
                    query=event.query,
                    at=event.at,
                    category="displaced-scan",
                    source=stored.location,
                    target=node.location,
                    permitted=(stored.location, *sorted(replica_sites)),
                    message=(
                        f"payload scans {node.database}.{node.table} at "
                        f"{node.location!r} but the table lives at "
                        f"{stored.location!r} and has no replica there — "
                        f"data was read across a border without a SHIP"
                    ),
                )
            )
