"""Post-hoc compliance auditing of execution traces.

:class:`ComplianceAuditor` replays a trace against a policy set and
schema and checks the end-to-end invariant behind the paper's Theorem 1
at the level of *observed behavior*: every SHIP attempt's destination —
delivered or not, first try or retry, before or after failover — must
lie in the permitted-location set of the payload it tried to move.

The auditor is deliberately **independent of the optimizer and the
execution engine**: it sees only the serialized events and re-derives
each payload's permitted destinations from the embedded payload
descriptor (:mod:`repro.trace.codec`) and the policy set, re-running
the Algorithm-1 evaluator per sub-payload exactly like the content-based
validator does:

* a scan's result is permitted at the scan's site, plus whatever 𝒜
  grants its (single-database) subquery;
* an internal operator's result is permitted wherever *all* of its
  inputs are permitted, plus the 𝒜 grant of its own subquery (masking
  projections and aggregations can legalize more sites than their
  inputs had — the paper's Fig. 1(b) masking pattern);
* grants apply only to single-database, union-free subqueries —
  Algorithm 1's domain.

Crucially this set depends only on the payload's *content* and the
(immovable) scan sites, never on where operators were placed — so the
verdict is meaningful even for transfers attempted by failover-re-placed
fragments, and a corrupted placement cannot launder data by moving the
operators along with it.

One placement fact *is* checked against the schema: every scan in every
payload must sit at a site legally holding the data — the stored
table's home, or a *registered replica* whose site the auditor
independently re-confirms inside 𝒜 of the bare full-table scan.  A
scan at an unregistered site is a ``displaced-scan`` (a runtime that
"relocated" a scan would read the table remotely without any SHIP
event ever crossing the wire — the one movement a transfer-level audit
alone could not see); a scan at a registered replica the policies do
not admit is a ``non-compliant-replica``.  Post-failover re-reads are
covered identically: a replica-kind failover re-derives the payload
descriptor, so the replica actually read always shows up here.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..catalog import FRESHNESS_EPS, FreshnessTracker
from ..errors import CatalogError, FreshnessAuditError
from ..policy import PolicyCatalog, PolicyEvaluator, describe_local_query
from ..plan import LogicalPlan, LogicalScan, LogicalUnion
from .codec import decode_logical, payload_reads, strip_payload_reads
from .events import (
    ChunkEvent,
    OptimizedEvent,
    RecoveryEvent,
    ScanReadEvent,
    ShipEvent,
    TraceEvent,
)
from .recorder import read_trace

#: Tolerance when comparing a trace's recorded staleness against the
#: auditor's independent re-derivation (serialization round-trips).
_MISREPORT_TOLERANCE = 1e-6


@dataclass(frozen=True)
class ComplianceViolation:
    """One audited transfer (or scan placement) the policies forbid."""

    query: int
    at: float
    #: "forbidden-destination" | "displaced-scan" |
    #: "non-compliant-replica" | "unauditable" | "stale-read" |
    #: "freshness-misreport"
    category: str
    source: str
    target: str
    permitted: tuple[str, ...]
    message: str

    def __str__(self) -> str:
        return (
            f"[query {self.query} @ t={self.at:.3f}s] {self.category}: "
            f"{self.message}"
        )


@dataclass
class AuditReport:
    """The auditor's verdict over one trace."""

    events: int = 0
    queries: int = 0
    #: SHIP attempts audited (all outcomes, including failed attempts).
    attempts: int = 0
    #: Chunk-send attempts of streamed transfers audited against their
    #: logical transfer's single payload descriptor.
    chunk_attempts: int = 0
    #: Audited attempts that crossed a border (source != target).
    cross_border: int = 0
    #: Distinct payload descriptors whose permitted sets were derived.
    payloads: int = 0
    #: Failovers recorded without a compliance guard (informational).
    unvalidated_recoveries: int = 0
    #: Committed base-table reads audited (``scan_read`` events), and
    #: the per-read freshness verdicts re-derived from the catalog's
    #: refresh schedules: exact (staleness ~ 0), lagging but within the
    #: query's bound, or over the bound (each of the latter is also a
    #: ``stale-read`` violation).
    scan_reads: int = 0
    fresh_reads: int = 0
    stale_within_bound: int = 0
    bound_violated: int = 0
    violations: list[ComplianceViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        verdict = (
            "COMPLIANT"
            if self.ok
            else f"NON-COMPLIANT ({len(self.violations)} violations)"
        )
        text = (
            f"audit: {verdict} — {self.events} events, {self.queries} queries, "
            f"{self.attempts} transfer attempts ({self.cross_border} "
            f"cross-border), {self.payloads} distinct payloads"
        )
        if self.chunk_attempts:
            text += f"; {self.chunk_attempts} chunk attempts"
        if self.scan_reads:
            text += (
                f"; {self.scan_reads} replica reads ({self.fresh_reads} fresh, "
                f"{self.stale_within_bound} stale-within-bound, "
                f"{self.bound_violated} bound-violated)"
            )
        return text


class ComplianceAuditor:
    """Audits traces against one policy catalog (and its schema)."""

    def __init__(
        self,
        policies: PolicyCatalog,
        freshness: FreshnessTracker | None = None,
        max_staleness: float | None = None,
    ) -> None:
        self.policies = policies
        self.evaluator = PolicyEvaluator(policies)
        #: Independent staleness re-derivation from the catalog's
        #: declared replicas and refresh schedules.  ``None`` is fine
        #: for traces without freshness evidence; auditing a trace that
        #: *carries* freshness claims without a tracker fails closed
        #: with :class:`~repro.errors.FreshnessAuditError`.
        self.freshness = freshness
        #: Fallback staleness bound for queries whose ``optimized``
        #: event recorded none (pre-freshness traces, or runs with the
        #: bound set purely at the scheduler).
        self.max_staleness = max_staleness
        #: permitted-set cache keyed by canonical payload JSON — retry
        #: and failover attempts re-ship the same payload.  Freshness
        #: annotations are stripped from the key: re-reads of the same
        #: subquery at different instants are compliance-identical.
        self._permitted_cache: dict[str, frozenset[str]] = {}
        #: Independent replica re-derivation: per (database, table) the
        #: 𝒜 grant of the bare full-table scan, used to confirm that a
        #: registered replica's site was a permitted source.
        from ..policy.replicas import ReplicaResolver

        self._replicas = ReplicaResolver(policies.catalog, self.evaluator)

    # -- the permitted-location set of a payload --------------------------------

    def permitted_destinations(self, payload: LogicalPlan) -> frozenset[str]:
        """Everywhere the payload's content may legally be sent,
        re-derived bottom-up from the policy set (see module docstring)."""
        if isinstance(payload, LogicalScan):
            permitted = frozenset([payload.location])
        else:
            permitted = self.policies.all_locations
            for child in payload.children():
                permitted = permitted & self.permitted_destinations(child)
        return permitted | self._grant(payload)

    def _grant(self, payload: LogicalPlan) -> frozenset[str]:
        """Algorithm 1's verdict for the payload's subquery, or ∅ when
        the subquery is outside its domain (multi-database or union)."""
        if len(payload.source_databases) != 1:
            return frozenset()
        if any(isinstance(node, LogicalUnion) for node in payload.walk()):
            return frozenset()
        return self.evaluator.evaluate(describe_local_query(payload))

    # -- auditing ---------------------------------------------------------------

    def audit_events(self, events: Iterable[TraceEvent]) -> AuditReport:
        events = list(events)
        report = AuditReport()
        seen_queries: set[int] = set()
        seen_scans: set[tuple[int, str, str, str]] = set()
        seen_claims: set[tuple] = set()
        #: Per-query staleness bound, from each query's optimized event
        #: (collected up front — auditing must not depend on event
        #: order) with the constructor's bound as the fallback.
        bounds: dict[int, float] = {}
        #: Chunk events carry no payload; they join to the one payload
        #: descriptor of their logical transfer (collected up front —
        #: the rolled-up ship event is stamped at the *delivery*
        #: instant, after every chunk it summarizes).
        transfer_payloads: dict[tuple, dict[str, Any]] = {}
        for event in events:
            if (
                isinstance(event, OptimizedEvent)
                and event.max_staleness is not None
            ):
                bounds[event.query] = event.max_staleness
            if isinstance(event, ShipEvent) and event.payload is not None:
                key = (
                    event.query,
                    event.producer,
                    event.consumer,
                    event.source,
                    event.target,
                )
                transfer_payloads.setdefault(key, event.payload)
                transfer_payloads.setdefault(key[:3], event.payload)
        for event in events:
            report.events += 1
            if event.query:
                seen_queries.add(event.query)
            if isinstance(event, RecoveryEvent) and not event.validated:
                report.unvalidated_recoveries += 1
            if isinstance(event, ScanReadEvent):
                self._audit_scan_read(
                    event, bounds.get(event.query, self.max_staleness), report
                )
                continue
            if isinstance(event, ChunkEvent):
                report.chunk_attempts += 1
                self._audit_chunk(event, transfer_payloads, report)
                continue
            if not isinstance(event, ShipEvent):
                continue
            report.attempts += 1
            self._audit_ship(event, report, seen_scans)
            self._audit_ship_freshness(event, seen_claims, report)
        report.queries = len(seen_queries)
        report.payloads = len(self._permitted_cache)
        return report

    def audit_file(self, path: str) -> AuditReport:
        return self.audit_events(read_trace(path))

    def _audit_ship(
        self,
        event: ShipEvent,
        report: AuditReport,
        seen_scans: set[tuple[int, str, str, str]],
    ) -> None:
        if event.payload is None:
            report.violations.append(
                ComplianceViolation(
                    query=event.query,
                    at=event.at,
                    category="unauditable",
                    source=event.source,
                    target=event.target,
                    permitted=(),
                    message=(
                        f"ship {event.source} -> {event.target} carries no "
                        f"payload descriptor; compliance cannot be proven"
                    ),
                )
            )
            return
        key = json.dumps(
            strip_payload_reads(event.payload),
            sort_keys=True,
            separators=(",", ":"),
        )
        permitted = self._permitted_cache.get(key)
        payload = decode_logical(event.payload)
        self._audit_scan_sites(event, payload, report, seen_scans)
        if permitted is None:
            permitted = self.permitted_destinations(payload)
            self._permitted_cache[key] = permitted
        if event.source == event.target:
            return
        report.cross_border += 1
        if event.target not in permitted:
            report.violations.append(
                ComplianceViolation(
                    query=event.query,
                    at=event.at,
                    category="forbidden-destination",
                    source=event.source,
                    target=event.target,
                    permitted=tuple(sorted(permitted)),
                    message=(
                        f"attempt {event.attempt} ({event.outcome}) tried to "
                        f"ship {event.bytes} bytes of a payload permitted only "
                        f"at {sorted(permitted)} from {event.source} to "
                        f"{event.target}"
                    ),
                )
            )

    def _audit_chunk(
        self,
        event: ChunkEvent,
        transfer_payloads: dict[tuple, "dict[str, Any]"],
        report: AuditReport,
    ) -> None:
        """Audit one chunk-send attempt against the payload descriptor
        of its logical transfer.

        The exact join key includes source and target; when it misses
        (e.g. a tampered chunk destination no rolled-up ship event ever
        announced) the auditor falls back to the transfer identity alone
        so the chunk is still judged against the payload it belongs to —
        and a chunk that cannot be tied to any payload is unauditable,
        itself a violation."""
        payload = transfer_payloads.get(
            (event.query, event.producer, event.consumer, event.source, event.target)
        ) or transfer_payloads.get((event.query, event.producer, event.consumer))
        if payload is None:
            report.violations.append(
                ComplianceViolation(
                    query=event.query,
                    at=event.at,
                    category="unauditable",
                    source=event.source,
                    target=event.target,
                    permitted=(),
                    message=(
                        f"chunk {event.chunk}/{event.of} "
                        f"{event.source} -> {event.target} belongs to no "
                        f"payload-carrying transfer descriptor; compliance "
                        f"cannot be proven"
                    ),
                )
            )
            return
        key = json.dumps(
            strip_payload_reads(payload),
            sort_keys=True,
            separators=(",", ":"),
        )
        permitted = self._permitted_cache.get(key)
        if permitted is None:
            permitted = self.permitted_destinations(decode_logical(payload))
            self._permitted_cache[key] = permitted
        if event.source == event.target:
            return
        if event.target not in permitted:
            report.violations.append(
                ComplianceViolation(
                    query=event.query,
                    at=event.at,
                    category="forbidden-destination",
                    source=event.source,
                    target=event.target,
                    permitted=tuple(sorted(permitted)),
                    message=(
                        f"chunk {event.chunk}/{event.of} attempt "
                        f"{event.attempt} ({event.outcome}) tried to send "
                        f"{event.bytes} wire bytes of a payload permitted "
                        f"only at {sorted(permitted)} from {event.source} "
                        f"to {event.target}"
                    ),
                )
            )

    def _audit_scan_sites(
        self,
        event: ShipEvent,
        payload: LogicalPlan,
        report: AuditReport,
        seen_scans: set[tuple[int, str, str, str]],
    ) -> None:
        """Flag payload scans claiming an illegal source site
        (deduplicated per query and scan).

        Three-way verdict per scan: the stored table's home is always
        legal; a *registered* replica site is legal iff the auditor's
        own Algorithm-1 run over the bare full-table scan admits it
        (``non-compliant-replica`` otherwise); any other site is a
        ``displaced-scan``."""
        for node in payload.walk():
            if not isinstance(node, LogicalScan):
                continue
            try:
                stored = self.policies.catalog.stored_table(
                    node.database, node.table
                )
            except Exception:
                continue  # table unknown to this schema; nothing to check
            if stored.location == node.location:
                continue
            dedup = (event.query, node.database, node.table, node.location)
            if dedup in seen_scans:
                continue
            seen_scans.add(dedup)
            replica_sites = self.policies.catalog.replica_sites(
                node.database, node.table
            )
            if node.location in replica_sites:
                grant = self._replicas.full_scan_grant(node.database, node.table)
                if node.location in grant:
                    continue  # compliant replica read — permitted source
                report.violations.append(
                    ComplianceViolation(
                        query=event.query,
                        at=event.at,
                        category="non-compliant-replica",
                        source=stored.location,
                        target=node.location,
                        permitted=tuple(sorted(grant)),
                        message=(
                            f"payload reads the replica of "
                            f"{node.database}.{node.table} at "
                            f"{node.location!r}, but the dataflow policies "
                            f"only admit the table at {sorted(grant)}"
                        ),
                    )
                )
                continue
            report.violations.append(
                ComplianceViolation(
                    query=event.query,
                    at=event.at,
                    category="displaced-scan",
                    source=stored.location,
                    target=node.location,
                    permitted=(stored.location, *sorted(replica_sites)),
                    message=(
                        f"payload scans {node.database}.{node.table} at "
                        f"{node.location!r} but the table lives at "
                        f"{stored.location!r} and has no replica there — "
                        f"data was read across a border without a SHIP"
                    ),
                )
            )

    # -- freshness auditing ------------------------------------------------------

    def _derived_staleness(
        self, database: str, table: str, site: str, at: float
    ) -> float:
        """The auditor's own staleness derivation for one claimed read;
        fails closed when the catalog state needed to derive it was not
        provided (the claim must never audit as fresh by default)."""
        if self.freshness is None:
            raise FreshnessAuditError(
                "trace carries freshness evidence (scan_read events or "
                "staleness_at_read annotations) but the auditor has no "
                "freshness tracker — re-run `repro audit` with the traced "
                "run's --replicas (and, for scheduled replicas, --refresh) "
                "so staleness can be independently re-derived"
            )
        try:
            return self.freshness.staleness(database, table, site, at)
        except CatalogError as error:
            raise FreshnessAuditError(
                f"cannot re-derive the staleness of {database}.{table} read "
                f"at {site!r} (t={at:.3f}s): {error}. The audit-side catalog "
                f"must mirror the traced run — pass the same --replicas and "
                f"--refresh specs the run used"
            ) from error

    def _audit_scan_read(
        self, event: ScanReadEvent, bound: float | None, report: AuditReport
    ) -> None:
        """Re-derive one committed read's staleness and give the
        three-way freshness verdict: fresh / stale-within-bound /
        bound-violated.  The verdict always uses the *derived* value —
        a recorded claim that disagrees is itself a violation."""
        derived = self._derived_staleness(
            event.database, event.table, event.site, event.at
        )
        if abs(derived - event.staleness_at_read) > _MISREPORT_TOLERANCE:
            report.violations.append(
                ComplianceViolation(
                    query=event.query,
                    at=event.at,
                    category="freshness-misreport",
                    source=event.site,
                    target=event.site,
                    permitted=(),
                    message=(
                        f"scan_read of {event.database}.{event.table} at "
                        f"{event.site!r} recorded staleness "
                        f"{event.staleness_at_read:.6f}s but the refresh "
                        f"schedules derive {derived:.6f}s — the trace "
                        f"misreports freshness (or the audit-side --refresh "
                        f"spec differs from the traced run's)"
                    ),
                )
            )
        report.scan_reads += 1
        if derived <= FRESHNESS_EPS:
            report.fresh_reads += 1
        elif bound is None or derived <= bound + FRESHNESS_EPS:
            report.stale_within_bound += 1
        else:
            report.bound_violated += 1
            report.violations.append(
                ComplianceViolation(
                    query=event.query,
                    at=event.at,
                    category="stale-read",
                    source=event.site,
                    target=event.site,
                    permitted=(),
                    message=(
                        f"fragment f{event.fragment} read "
                        f"{event.database}.{event.table} at {event.site!r} "
                        f"with staleness {derived:.3f}s, over the query's "
                        f"{bound:g}s bound"
                    ),
                )
            )

    def _audit_ship_freshness(
        self, event: ShipEvent, seen_claims: set[tuple], report: AuditReport
    ) -> None:
        """Cross-check the freshness claims riding on a shipped payload
        (one per annotated scan descriptor) against the auditor's own
        derivation, deduplicated per distinct claim — retries re-ship
        the same annotated payload."""
        if event.payload is None:
            return
        annotated = payload_reads(event.payload)
        if not annotated and event.staleness_at_read is None:
            return
        for node in annotated:
            database = node.get("database")
            table = node.get("table")
            site = node.get("location")
            read_at = node.get("read_at")
            claimed = node.get("staleness_at_read")
            dedup = (event.query, database, table, site, read_at, claimed)
            if dedup in seen_claims:
                continue
            seen_claims.add(dedup)
            if not isinstance(read_at, (int, float)) or not isinstance(
                claimed, (int, float)
            ):
                raise FreshnessAuditError(
                    f"payload scan of {database}.{table} at {site!r} carries "
                    f"malformed freshness annotations "
                    f"(read_at={read_at!r}, staleness_at_read={claimed!r})"
                )
            derived = self._derived_staleness(database, table, site, read_at)
            if abs(derived - claimed) > _MISREPORT_TOLERANCE:
                report.violations.append(
                    ComplianceViolation(
                        query=event.query,
                        at=event.at,
                        category="freshness-misreport",
                        source=site,
                        target=event.target,
                        permitted=(),
                        message=(
                            f"shipped payload claims the replica of "
                            f"{database}.{table} at {site!r} was "
                            f"{claimed:.6f}s stale at t={read_at:.3f}s, but "
                            f"the refresh schedules derive {derived:.6f}s — "
                            f"the payload misreports freshness (or the "
                            f"audit-side --refresh spec differs from the "
                            f"traced run's)"
                        ),
                    )
                )
        if event.staleness_at_read is not None and not annotated:
            # A staleness claim with no annotated scan to back it: the
            # claim cannot be tied to any copy, so it is unverifiable.
            raise FreshnessAuditError(
                f"ship {event.source} -> {event.target} claims "
                f"staleness_at_read={event.staleness_at_read:g}s but its "
                f"payload carries no annotated scan to verify the claim "
                f"against — the trace's freshness evidence is inconsistent"
            )
