"""Execution tracing and post-hoc compliance auditing.

A :class:`TraceRecorder` installed with :func:`tracing` collects typed
events from every instrumented layer — optimizer trait/placement
decisions, every SHIP attempt (retries, breaker fast-fails, failover
re-deliveries included) on the simulated WAN clock, and query-server
admission/shedding decisions — and serializes them to deterministic
JSONL.  A :class:`ComplianceAuditor` then replays a trace against a
policy set and re-derives, per shipped payload, the set of permitted
destinations via the Algorithm-1 evaluator: the paper's Theorem 1
(optimizer soundness) turned into an executable runtime oracle.  See
docs/OBSERVABILITY.md.
"""

from .auditor import AuditReport, ComplianceAuditor, ComplianceViolation
from .codec import (
    annotate_payload_reads,
    decode_expression,
    decode_logical,
    encode_expression,
    encode_logical,
    encode_payload,
    payload_reads,
    strip_payload_reads,
)
from .events import (
    EVENT_TYPES,
    SHIP_OUTCOMES,
    ChunkEvent,
    OptimizedEvent,
    PlacementEvent,
    QueryEnd,
    QueryStart,
    RecoveryEvent,
    RequestEvent,
    ScanReadEvent,
    ShipEvent,
    TraceEvent,
    event_from_dict,
)
from .recorder import (
    TraceRecorder,
    current_recorder,
    parse_trace,
    read_trace,
    tracing,
)

__all__ = [
    "AuditReport",
    "ComplianceAuditor",
    "ComplianceViolation",
    "ChunkEvent",
    "EVENT_TYPES",
    "OptimizedEvent",
    "PlacementEvent",
    "QueryEnd",
    "QueryStart",
    "RecoveryEvent",
    "RequestEvent",
    "SHIP_OUTCOMES",
    "ScanReadEvent",
    "ShipEvent",
    "TraceEvent",
    "TraceRecorder",
    "annotate_payload_reads",
    "current_recorder",
    "decode_expression",
    "decode_logical",
    "encode_expression",
    "encode_logical",
    "encode_payload",
    "event_from_dict",
    "parse_trace",
    "payload_reads",
    "read_trace",
    "strip_payload_reads",
    "tracing",
]
