"""Typed trace events.

Every event is a small dataclass with a class-level ``kind`` tag, a
``query`` id (0 = outside any query bracket — e.g. shared optimizer
work or server-level admission decisions), and an ``at`` instant on the
*simulated* clock (sequential executions have no clock and stamp 0.0).
Wall-clock readings never appear in events: traces must be byte-stable
across runs, and only the simulated timeline is deterministic.

``to_dict``/:func:`event_from_dict` round-trip events through plain
JSON-compatible dicts; :func:`event_from_dict` raises a typed
:class:`~repro.errors.TraceFormatError` for unknown kinds and missing
or mistyped required fields, so a hand-edited or truncated trace fails
the reader instead of silently skewing an audit.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar

from ..errors import TraceFormatError

#: Ship-attempt outcomes, as recorded by the emission sites.
#: ``delivered`` is the only outcome that moves data; every other is a
#: failed attempt (audited all the same — an attempt reveals where the
#: executor *tried* to send the payload).
SHIP_OUTCOMES = (
    "delivered",  # transfer succeeded at the attempt instant
    "transient",  # retriable blip; the scheduler backs off and retries
    "retry_exhausted",  # transient failures exceeded the retry budget
    "link_down",  # permanent link failure (no retry)
    "circuit_open",  # per-link breaker fast-fail (no retry)
    "site_down",  # an endpoint site crashed
    "timeout",  # per-fragment input-delivery timeout tripped
)


@dataclass
class TraceEvent:
    """Base class; subclasses add their own fields after these two."""

    kind: ClassVar[str] = ""
    #: Rank used to order co-instant events of one query deterministically.
    rank: ClassVar[int] = 5

    query: int = 0
    at: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        data = {"kind": type(self).kind}
        data.update(dataclasses.asdict(self))
        return data


@dataclass
class QueryStart(TraceEvent):
    """Opens a query bracket (engine execution or server dispatch)."""

    kind: ClassVar[str] = "query_start"
    rank: ClassVar[int] = 0

    label: str | None = None
    executor: str | None = None
    parallel: bool | None = None


@dataclass
class OptimizedEvent(TraceEvent):
    """One optimizer run: the root's chosen traits and search effort."""

    kind: ClassVar[str] = "optimized"
    rank: ClassVar[int] = 1

    operator: str = ""
    result_location: str = ""
    #: Sorted 𝒮 trait of the root group — everywhere the result may ship.
    shipping_trait: list[str] = dataclasses.field(default_factory=list)
    #: Sorted ℰ trait of the root group — everywhere the root may run.
    execution_trait: list[str] = dataclasses.field(default_factory=list)
    groups: int = 0
    expressions: int = 0
    #: True when the plan came from the compliant plan cache (both
    #: optimizer phases skipped; traits/effort are the cached
    #: template's).  Defaults to False so pre-cache traces stay
    #: parseable.
    plan_cache_hit: bool = False
    #: The query's staleness bound in seconds (``--max-staleness``),
    #: recorded so the independent auditor re-derives per-scan freshness
    #: verdicts against the *traced* bound.  ``None`` = no bound.
    max_staleness: float | None = None


@dataclass
class PlacementEvent(TraceEvent):
    """Site selection for one physical operator (SHIPs excluded — their
    placements are the ship events themselves)."""

    kind: ClassVar[str] = "placement"
    rank: ClassVar[int] = 2

    operator: str = ""
    location: str = ""
    #: Sorted ℰ trait the operator was annotated with (None when the
    #: plan carries no annotation, e.g. the traditional baseline).
    execution_trait: list[str] | None = None


@dataclass
class RequestEvent(TraceEvent):
    """A query-server admission/shedding decision for one request."""

    kind: ClassVar[str] = "request"
    rank: ClassVar[int] = 3

    action: str = ""  # arrival | rejected | shed | served | served_late | partial
    label: str = ""
    detail: str | None = None


@dataclass
class ShipEvent(TraceEvent):
    """One transfer *attempt* at a SHIP boundary."""

    kind: ClassVar[str] = "ship"
    rank: ClassVar[int] = 4

    source: str = ""
    target: str = ""
    rows: int = 0
    bytes: int = 0
    attempt: int = 1
    outcome: str = "delivered"
    #: Simulated transfer seconds (delivered attempts only).
    seconds: float | None = None
    #: Producer/consumer fragment indices (None on sequential runs).
    producer: int | None = None
    consumer: int | None = None
    columns: list[str] = dataclasses.field(default_factory=list)
    #: Self-contained payload descriptor (see :mod:`repro.trace.codec`).
    payload: dict[str, Any] | None = None
    #: Worst staleness (seconds) among the producer fragment's committed
    #: replica reads — the freshness claim shipped with the data.
    #: ``None`` when the producer read no replica (or no freshness
    #: policy was active); defaults keep pre-freshness traces parseable.
    staleness_at_read: float | None = None
    #: Compressed bytes that actually crossed the link (``bytes`` stays
    #: the logical uncompressed size).  ``None`` on legacy plain-wire
    #: transfers — and then omitted from the serialized form entirely,
    #: so non-streaming traces are byte-identical to earlier releases.
    wire_bytes: int | None = None
    #: Chunk count of a streamed transfer (omitted with ``wire_bytes``).
    chunks: int | None = None

    def to_dict(self) -> dict[str, Any]:
        data = super().to_dict()
        if data.get("wire_bytes") is None:
            data.pop("wire_bytes", None)
            data.pop("chunks", None)
        return data


@dataclass
class ChunkEvent(TraceEvent):
    """One chunk-send *attempt* of a streamed SHIP transfer.

    Chunk events carry no payload descriptor: the auditor joins them to
    the single rolled-up :class:`ShipEvent` of their logical transfer
    via ``(query, producer, consumer, source, target)`` and re-derives
    permitted destinations from that one payload — "exactly one payload
    descriptor per logical transfer" stays true at any chunk size.
    ``bytes`` is the chunk's *wire* (compressed) size."""

    kind: ClassVar[str] = "chunk"
    rank: ClassVar[int] = 4

    source: str = ""
    target: str = ""
    #: Chunk index within the transfer, and the transfer's chunk count.
    chunk: int = 0
    of: int = 1
    rows: int = 0
    bytes: int = 0
    attempt: int = 1
    outcome: str = "delivered"
    #: Simulated send seconds (delivered attempts only).
    seconds: float | None = None
    producer: int | None = None
    consumer: int | None = None


@dataclass
class RecoveryEvent(TraceEvent):
    """A failover re-placement of one fragment."""

    kind: ClassVar[str] = "recovery"
    rank: ClassVar[int] = 5

    fragment: int = 0
    source: str = ""
    target: str = ""
    reason: str = ""
    #: Whether the new placement passed the recovery compliance check
    #: (False only when the scheduler runs without a compliance guard).
    validated: bool = False
    #: ``"replica"`` when a scan-bearing fragment moved to a compliant
    #: replica site; ``"replacement"`` for classic ℰ-restricted
    #: re-placement.  Named ``failover_kind`` because ``kind`` is the
    #: event-type tag; defaults keep pre-replica traces parseable.
    failover_kind: str = "replacement"
    #: Staleness (seconds) of the demoted replica at the decision
    #: instant, for freshness demotions; ``None`` for every other
    #: failover reason.
    staleness_at_read: float | None = None


@dataclass
class ScanReadEvent(TraceEvent):
    """One committed base-table read from a replica site: which copy a
    fragment actually read, at which simulated instant (``at``), and
    how stale that copy was.  Emitted once per replica scan per
    admitted fragment when a freshness policy is active — the unit the
    auditor's freshness verdicts and the ``stale_reads`` counter
    reconcile over."""

    kind: ClassVar[str] = "scan_read"
    rank: ClassVar[int] = 4

    fragment: int = 0
    database: str = ""
    table: str = ""
    site: str = ""
    staleness_at_read: float = 0.0


@dataclass
class QueryEnd(TraceEvent):
    """Closes a query bracket."""

    kind: ClassVar[str] = "query_end"
    rank: ClassVar[int] = 9

    status: str = "ok"  # ok | partial | shed | error
    rows: int | None = None
    makespan: float | None = None


EVENT_TYPES: dict[str, type[TraceEvent]] = {
    cls.kind: cls
    for cls in (
        QueryStart,
        OptimizedEvent,
        PlacementEvent,
        RequestEvent,
        ShipEvent,
        ChunkEvent,
        RecoveryEvent,
        ScanReadEvent,
        QueryEnd,
    )
}

#: Fields every event must carry in serialized form.
_BASE_REQUIRED = ("query", "at")

#: Per-kind additional required fields (the rest default sensibly).
_REQUIRED: dict[str, tuple[str, ...]] = {
    "query_start": (),
    "optimized": ("result_location",),
    "placement": ("operator", "location"),
    "request": ("action", "label"),
    "ship": ("source", "target", "bytes", "attempt", "outcome"),
    "chunk": ("source", "target", "chunk", "outcome"),
    "recovery": ("fragment", "source", "target"),
    "scan_read": ("database", "table", "site", "staleness_at_read"),
    "query_end": ("status",),
}


def event_from_dict(data: Any) -> TraceEvent:
    """Revive one event; raises :class:`TraceFormatError` when it does
    not describe a well-formed event of a known kind."""
    if not isinstance(data, dict):
        raise TraceFormatError(f"trace event must be an object, got {type(data).__name__}")
    kind = data.get("kind")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise TraceFormatError(f"unknown trace event kind {kind!r}")
    missing = [
        name
        for name in (*_BASE_REQUIRED, *_REQUIRED[kind])
        if name not in data
    ]
    if missing:
        raise TraceFormatError(
            f"{kind} event is missing required field(s): {', '.join(missing)}"
        )
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - names - {"kind"})
    if unknown:
        raise TraceFormatError(
            f"{kind} event has unknown field(s): {', '.join(unknown)}"
        )
    kwargs = {k: v for k, v in data.items() if k in names}
    try:
        event = cls(**kwargs)
    except TypeError as error:  # pragma: no cover - defensive
        raise TraceFormatError(f"malformed {kind} event: {error}") from error
    if not isinstance(event.query, int) or not isinstance(event.at, (int, float)):
        raise TraceFormatError(f"{kind} event has mistyped query/at fields")
    if isinstance(event, (ShipEvent, ChunkEvent)) and event.outcome not in SHIP_OUTCOMES:
        raise TraceFormatError(f"unknown {kind} outcome {event.outcome!r}")
    return event
