"""Context-scoped trace recording.

The recorder is installed with :func:`tracing` and discovered by the
emission sites (optimizer, executors, scheduler, server) through
:func:`current_recorder` — a single :class:`~contextvars.ContextVar`
read.  When no recorder is installed every site's hook is one
``None``-check; no event object is ever built, which is what keeps the
disabled path effectively free (the overhead benchmark pins this down).

Worker threads of the fragment scheduler do **not** inherit the context
variable, and by design never need to: fragment bodies resolve cut SHIP
leaves from already-computed results without emitting, so all emission
happens on the single coordinator/caller thread and the recorder needs
no locking.

Determinism
-----------
``wait(..., FIRST_COMPLETED)`` makes the *emission* order of events
from independent fragments nondeterministic across runs.  Events are
therefore ordered at serialization time by a deterministic key —
``(query, at, kind-rank, emission-ordinal, canonical JSON)`` — where
the emission ordinal participates only for events emitted from
deterministic single-threaded code paths (sequential executors, the
optimizer, the server loop); scheduler-side events opt out
(``stable=False``) and fall back to their simulated instants with the
canonical JSON line as the final tiebreak.  Together with the
simulated-clock-only timestamps this makes a trace byte-identical
across runs of the same query, seed, and executor.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Iterator

from ..errors import TraceFormatError
from ..plan import PhysicalPlan, Ship
from .codec import encode_payload
from .events import (
    OptimizedEvent,
    PlacementEvent,
    QueryEnd,
    QueryStart,
    RequestEvent,
    ShipEvent,
    TraceEvent,
    event_from_dict,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..optimizer.compliant import OptimizationResult

#: Emission-ordinal stand-in for events whose emission order is not
#: deterministic (scheduler coordinator): larger than any real ordinal,
#: so ties fall through to the canonical-JSON key.
_UNORDERED = 1 << 60

_ACTIVE: ContextVar["TraceRecorder | None"] = ContextVar(
    "repro_trace_recorder", default=None
)


def current_recorder() -> "TraceRecorder | None":
    """The recorder installed on this thread's context, if any."""
    return _ACTIVE.get()


@contextmanager
def tracing(recorder: "TraceRecorder") -> Iterator["TraceRecorder"]:
    """Install ``recorder`` for the duration of the block."""
    token = _ACTIVE.set(recorder)
    try:
        yield recorder
    finally:
        _ACTIVE.reset(token)


class TraceRecorder:
    """Collects typed events from one or more traced executions."""

    def __init__(self) -> None:
        #: (event, emission ordinal or _UNORDERED)
        self._entries: list[tuple[TraceEvent, int]] = []
        self._next_query = 1
        self._stack: list[int] = []

    # -- emission ---------------------------------------------------------------

    @property
    def current_query(self) -> int:
        """Query id of the open bracket (0 outside any bracket)."""
        return self._stack[-1] if self._stack else 0

    def emit(self, event: TraceEvent, stable: bool = True) -> None:
        """Record ``event``; fills in the current query id.  ``stable``
        marks the emission order itself as deterministic (single-threaded
        code path) and usable as an ordering key."""
        if not event.query:
            event.query = self.current_query
        self._entries.append((event, len(self._entries) if stable else _UNORDERED))

    def begin_query(
        self,
        label: str | None = None,
        at: float = 0.0,
        executor: str | None = None,
        parallel: bool | None = None,
    ) -> int:
        """Open a query bracket; subsequent events belong to it."""
        query = self._next_query
        self._next_query += 1
        self._stack.append(query)
        self.emit(
            QueryStart(
                query=query, at=at, label=label, executor=executor, parallel=parallel
            )
        )
        return query

    def end_query(
        self,
        query: int,
        at: float,
        status: str = "ok",
        rows: int | None = None,
        makespan: float | None = None,
    ) -> None:
        self.emit(
            QueryEnd(query=query, at=at, status=status, rows=rows, makespan=makespan)
        )
        if query in self._stack:
            self._stack.remove(query)

    # -- emission helpers (one per instrumented site) ---------------------------

    def record_optimization(self, result: "OptimizationResult") -> None:
        """Optimizer decisions: the root's chosen ℰ/𝒮 traits plus one
        placement event per located (non-SHIP) physical operator."""
        root = result.annotate.root
        self.emit(
            OptimizedEvent(
                operator=result.plan.describe(),
                result_location=result.plan.location,
                shipping_trait=sorted(root.shipping_trait),
                execution_trait=sorted(root.execution_trait),
                groups=result.annotate.group_count,
                expressions=result.annotate.expression_count,
                plan_cache_hit=getattr(result, "cache_hit", False),
                max_staleness=getattr(result, "max_staleness", None),
            )
        )
        self.record_placements(result.plan)

    def record_placements(self, plan: PhysicalPlan) -> None:
        for node in plan.walk():
            if isinstance(node, Ship):
                continue
            trait = node.execution_trait
            self.emit(
                PlacementEvent(
                    operator=node.describe(),
                    location=node.location,
                    execution_trait=None if trait is None else sorted(trait),
                )
            )

    def record_local_ship(
        self,
        node: Ship,
        rows: int,
        nbytes: int,
        columns: list[str],
        seconds: float,
        wire_bytes: int | None = None,
        chunks: int | None = None,
    ) -> None:
        """A sequential-executor SHIP: exactly one attempt, delivered,
        no simulated clock (``at`` stays 0.0).  ``wire_bytes``/``chunks``
        are set only when a wire config compressed or chunked the
        transfer; ``nbytes`` is always the logical size."""
        assert node.child is not None
        self.emit(
            ShipEvent(
                source=node.source,
                target=node.target,
                rows=rows,
                bytes=nbytes,
                attempt=1,
                outcome="delivered",
                seconds=seconds,
                columns=list(columns),
                payload=encode_payload(node.child),
                wire_bytes=wire_bytes,
                chunks=chunks,
            )
        )

    def record_request(
        self, action: str, label: str, at: float, detail: str | None = None
    ) -> None:
        self.emit(RequestEvent(at=at, action=action, label=label, detail=detail))

    # -- access and serialization -----------------------------------------------

    def events(self) -> list[TraceEvent]:
        """All recorded events in the canonical deterministic order."""
        return [event for event, _ in self._sorted()]

    def _sorted(self) -> list[tuple[TraceEvent, str]]:
        keyed = [
            (event, ordinal, _canonical_line(event))
            for event, ordinal in self._entries
        ]
        keyed.sort(key=lambda e: (e[0].query, e[0].at, type(e[0]).rank, e[1], e[2]))
        return [(event, line) for event, _, line in keyed]

    def to_jsonl(self) -> str:
        """Serialize to JSON Lines, one event per line, in canonical
        order with canonical formatting (sorted keys, no whitespace) —
        the byte-stable on-disk form."""
        return "".join(line + "\n" for _, line in self._sorted())

    def write(self, path: str) -> int:
        """Write the JSONL trace to ``path``; returns the event count."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


def _canonical_line(event: TraceEvent) -> str:
    return json.dumps(
        event.to_dict(), sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )


# -- reading -------------------------------------------------------------------


def parse_trace(text: str) -> list[TraceEvent]:
    """Parse JSONL trace text into typed events; raises
    :class:`~repro.errors.TraceFormatError` (with the 1-based line
    number) on any malformed line."""
    events: list[TraceEvent] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as error:
            raise TraceFormatError(f"not valid JSON: {error}", line=number) from error
        try:
            events.append(event_from_dict(data))
        except TraceFormatError as error:
            raise TraceFormatError(str(error), line=number) from error
    return events


def read_trace(path: str) -> list[TraceEvent]:
    """Load a JSONL trace file written by :meth:`TraceRecorder.write`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise TraceFormatError(f"cannot read trace file {path!r}: {error}") from error
    return parse_trace(text)
