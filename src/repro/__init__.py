"""repro — Compliant Geo-distributed Query Processing (SIGMOD 2021).

A from-scratch Python reproduction of Beedkar, Quiané-Ruiz & Markl's
compliance-based query optimizer: declarative dataflow *policy
expressions*, a policy evaluator, a Volcano-style optimizer annotating
plans with execution/shipping traits, a dynamic-programming site
selector, and a geo-distributed execution engine — evaluated on a
geo-distributed TPC-H adaptation.

Quickstart::

    from repro import tpch
    from repro.optimizer import CompliantOptimizer

    catalog, geodb = tpch.build_benchmark(scale=0.01)
    policies = tpch.curated_policies(catalog, "CR")
    optimizer = CompliantOptimizer(catalog, policies)
    result = optimizer.optimize(tpch.QUERIES["Q3"])
    print(result.plan)
"""

from .errors import (
    BindingError,
    CatalogError,
    ComplianceViolationError,
    ExecutionError,
    NonCompliantQueryError,
    OptimizerError,
    PolicySyntaxError,
    ReproError,
    SqlSyntaxError,
)

__version__ = "1.0.0"

__all__ = [
    "BindingError",
    "CatalogError",
    "ComplianceViolationError",
    "ExecutionError",
    "NonCompliantQueryError",
    "OptimizerError",
    "PolicySyntaxError",
    "ReproError",
    "SqlSyntaxError",
    "__version__",
]
