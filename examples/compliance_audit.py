"""Compliance audit: where may each site's data legally go?

A data officer's view of the system: for every stored table (and a few
derived/masked forms of it), evaluate the policy catalog and print the
set of legal destinations — the paper's policy evaluation algorithm 𝒜
used as an offline audit tool rather than inside the optimizer.

Also demonstrates the "reject" path: queries that have no compliant plan
are detected before anything executes.

Run:  python examples/compliance_audit.py
"""

from repro.bench import format_table
from repro.errors import NonCompliantQueryError
from repro.optimizer import CompliantOptimizer
from repro.policy import PolicyEvaluator, describe_local_query
from repro.sql import Binder
from repro.tpch import LOCATIONS, build_catalog, curated_policies, default_network

#: (description, SQL) — progressively stronger maskings of customer data.
AUDIT_QUERIES = [
    ("raw customer rows", "SELECT * FROM customer"),
    (
        "without balance/address/phone",
        "SELECT c_custkey, c_name, c_nationkey, c_mktsegment FROM customer",
    ),
    (
        "building segment only",
        "SELECT c_custkey, c_name, c_nationkey, c_mktsegment FROM customer "
        "WHERE c_mktsegment = 'BUILDING'",
    ),
    ("raw lineitem revenue columns", "SELECT l_orderkey, l_extendedprice, l_discount FROM lineitem"),
    (
        "aggregated lineitem revenue",
        "SELECT l_orderkey, SUM(l_extendedprice) AS s1, SUM(l_discount) AS s2 "
        "FROM lineitem GROUP BY l_orderkey",
    ),
    ("raw part descriptions", "SELECT p_partkey, p_name, p_type, p_size FROM part"),
    (
        "large/copper parts only",
        "SELECT p_partkey, p_name, p_type, p_size FROM part "
        "WHERE p_size > 40 OR p_type LIKE '%COPPER%'",
    ),
]

ILLEGAL_QUERIES = [
    # Raw order comments are granted nowhere outside Europe.
    "SELECT o.o_comment, l.l_quantity FROM orders o, lineitem l "
    "WHERE o.o_orderkey = l.l_orderkey",
]


def main() -> None:
    catalog = build_catalog(scale=0.1)
    policies = curated_policies(catalog, "CR+A")
    evaluator = PolicyEvaluator(policies)
    binder = Binder(catalog)

    rows = []
    for label, sql in AUDIT_QUERIES:
        local_query = describe_local_query(binder.bind_sql(sql))
        destinations = evaluator.evaluate(local_query)
        marks = ["X" if loc in destinations else "." for loc in LOCATIONS]
        rows.append([label] + marks)
    print(
        format_table(
            ["data (possibly masked)"] + list(LOCATIONS),
            rows,
            title="Legal shipping destinations under the CR+A policy set "
            "(X = allowed; home location always allowed)",
        )
    )

    print("\nLegality screening of cross-border queries:")
    optimizer = CompliantOptimizer(catalog, policies, default_network())
    for sql in ILLEGAL_QUERIES:
        try:
            optimizer.optimize(sql)
            print("  LEGAL   :", " ".join(sql.split())[:90])
        except NonCompliantQueryError:
            print("  REJECTED:", " ".join(sql.split())[:90])
    legal = (
        "SELECT c.c_name, o.o_totalprice FROM customer c, orders o "
        "WHERE c.c_custkey = o.o_custkey"
    )
    try:
        result = optimizer.optimize(legal)
        print("  LEGAL   :", legal[:90])
        print(
            f"            ({result.annotate.group_count} memo groups, "
            f"{result.total_seconds * 1e3:.1f} ms)"
        )
    except NonCompliantQueryError:
        print("  REJECTED:", legal[:90])


if __name__ == "__main__":
    main()
