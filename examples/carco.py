"""The paper's Section 2 running example: CarCo.

A car manufacturer with Customer data in North America, Orders in
Europe, and Supply data in Asia wants a revenue/quantity report per
customer. The dataflow policies are the paper's P_N, P_E, P_A:

* P_N — customer data leaves North America only without account balances;
* P_E — only aggregated order prices may go to Asia, and order prices may
  never go to North America;
* P_A — only aggregated supply data may leave Asia for Europe.

The script shows the non-compliant cost-optimal plan (Fig. 1(a)-style),
the compliant plan the optimizer produces instead (Fig. 1(b): masking
projection + aggregation pushdown), the runtime guard refusing the
non-compliant plan, and that both plans compute the same answer.

Run:  python examples/carco.py
"""

import random

from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.errors import ComplianceViolationError
from repro.execution import ExecutionEngine
from repro.geo import GeoDatabase, synthetic_network
from repro.optimizer import CompliantOptimizer, TraditionalOptimizer, check_compliance
from repro.plan import explain_physical
from repro.policy import PolicyCatalog, PolicyEvaluator

QUERY = """
SELECT C.name, SUM(O.totprice) AS total_price, SUM(S.quantity) AS total_qty
FROM customer AS C, orders AS O, supply AS S
WHERE C.custkey = O.custkey AND O.ordkey = S.ordkey
GROUP BY C.name
"""


def build_world():
    catalog = Catalog()
    catalog.add_database("db_n", "NorthAmerica")
    catalog.add_database("db_e", "Europe")
    catalog.add_database("db_a", "Asia")
    catalog.add_table(
        "db_n",
        TableSchema(
            "customer",
            (
                Column("custkey", DataType.INTEGER),
                Column("name", DataType.VARCHAR),
                Column("acctbal", DataType.DECIMAL),
                Column("mktseg", DataType.VARCHAR),
                Column("region", DataType.VARCHAR),
            ),
            primary_key=("custkey",),
        ),
    )
    catalog.add_table(
        "db_e",
        TableSchema(
            "orders",
            (
                Column("custkey", DataType.INTEGER),
                Column("ordkey", DataType.INTEGER),
                Column("totprice", DataType.DECIMAL),
            ),
            primary_key=("ordkey",),
        ),
    )
    catalog.add_table(
        "db_a",
        TableSchema(
            "supply",
            (
                Column("ordkey", DataType.INTEGER),
                Column("quantity", DataType.INTEGER),
                Column("extprice", DataType.DECIMAL),
            ),
        ),
    )

    policies = PolicyCatalog(catalog)
    print("Dataflow policies (paper §2):")
    for text in (
        # P_N: suppress the account balance before shipping customers out.
        "ship custkey, name, mktseg, region from customer to *",
        # P_E: only aggregated order prices to Asia; keys may travel.
        "ship totprice as aggregates sum from orders to Asia group by custkey, ordkey",
        "ship custkey, ordkey from orders to Asia, Europe",
        # P_A: only aggregated supply data to Europe.
        "ship quantity, extprice as aggregates sum from supply to Europe group by ordkey",
    ):
        policies.add_text(text)
        print("  ", text)

    rng = random.Random(2021)
    database = GeoDatabase(catalog)
    database.load(
        "db_n",
        "customer",
        [
            (i, f"Customer#{i % 23}", round(rng.uniform(0, 9000), 2), "auto", "NA")
            for i in range(200)
        ],
    )
    database.load(
        "db_e",
        "orders",
        [(rng.randrange(200), k, round(rng.uniform(10, 500), 2)) for k in range(1500)],
    )
    database.load(
        "db_a",
        "supply",
        [
            (rng.randrange(1500), rng.randrange(1, 20), round(rng.uniform(1, 9), 2))
            for _ in range(5000)
        ],
    )
    return catalog, policies, database


def main() -> None:
    catalog, policies, database = build_world()
    network = synthetic_network(catalog.locations)
    evaluator = PolicyEvaluator(policies)

    print("\n--- Traditional (cost-only) optimizer — Fig. 1(a) ---")
    traditional = TraditionalOptimizer(catalog, network).optimize(QUERY)
    print(explain_physical(traditional.plan))
    for violation in check_compliance(traditional.plan, evaluator):
        print("  VIOLATION:", violation)

    print("\n--- Compliance-based optimizer — Fig. 1(b) ---")
    compliant = CompliantOptimizer(catalog, policies, network).optimize(QUERY)
    print(explain_physical(compliant.plan))
    print("violations:", check_compliance(compliant.plan, evaluator) or "none")

    guarded = ExecutionEngine(database, network, policy_guard=evaluator)
    unguarded = ExecutionEngine(database, network)
    try:
        guarded.execute(traditional.plan)
    except ComplianceViolationError as error:
        print(f"\nRuntime guard refused the traditional plan:\n  {error}")

    compliant_result = guarded.execute(compliant.plan)
    reference_result = unguarded.execute(traditional.plan)
    same = sorted(map(repr, compliant_result.rows)) == sorted(
        map(repr, reference_result.rows)
    )
    print(
        f"\nCompliant plan executed: {compliant_result.row_count} rows; "
        f"identical to the unconstrained answer: {same}"
    )
    print(
        f"Cross-border transfers: {compliant_result.metrics.total_bytes_shipped} "
        f"bytes over {len(compliant_result.metrics.ships)} SHIPs "
        f"({compliant_result.simulated_cost:.3f} s simulated)"
    )


if __name__ == "__main__":
    main()
