"""Ad-hoc workload study: a compact version of the paper's §7.2/§7.3.

Generates policy expressions from the four templates (T/C/CR/CR+A) and a
batch of random PK-FK join queries, then reports per template:

* how often the traditional optimizer's plan would violate a policy,
* the compliant optimizer's success rate (always 100%),
* average optimization times for both optimizers.

Run:  python examples/adhoc_workload_study.py [n_queries]
"""

import sys
import time

from repro.bench import format_table
from repro.errors import NonCompliantQueryError
from repro.optimizer import CompliantOptimizer, TraditionalOptimizer, check_compliance
from repro.policy import PolicyEvaluator
from repro.tpch import (
    AdHocQueryGenerator,
    PolicyGenerator,
    build_catalog,
    default_network,
)

TEMPLATES = {"T": 8, "C": 30, "CR": 30, "CR+A": 30}


def main(n_queries: int = 40) -> None:
    catalog = build_catalog(scale=1.0)
    network = default_network()
    queries = AdHocQueryGenerator(seed=99).generate(n_queries)
    print(f"Generated {n_queries} ad-hoc queries, e.g.:")
    for query in queries[:3]:
        print("  ", " ".join(query.sql.split())[:100])

    rows = []
    for template, n_expressions in TEMPLATES.items():
        policies = PolicyGenerator(catalog, seed=7, hub="NorthAmerica").generate(
            template, n_expressions
        )
        evaluator = PolicyEvaluator(policies)
        compliant = CompliantOptimizer(catalog, policies, network, max_expressions=3000)
        traditional = TraditionalOptimizer(catalog, network, max_expressions=3000)
        trad_ok = comp_ok = 0
        trad_ms = comp_ms = 0.0
        for query in queries:
            start = time.perf_counter()
            t_plan = traditional.optimize(query.sql).plan
            trad_ms += (time.perf_counter() - start) * 1000
            if not check_compliance(t_plan, evaluator):
                trad_ok += 1
            start = time.perf_counter()
            try:
                c_result = compliant.optimize(query.sql)
                comp_ms += (time.perf_counter() - start) * 1000
                if not check_compliance(c_result.plan, evaluator):
                    comp_ok += 1
            except NonCompliantQueryError:
                comp_ms += (time.perf_counter() - start) * 1000
        rows.append(
            [
                f"{template} ({n_expressions})",
                f"{trad_ok / n_queries:.2f}",
                f"{comp_ok / n_queries:.2f}",
                f"{trad_ms / n_queries:.1f}",
                f"{comp_ms / n_queries:.1f}",
            ]
        )
    print()
    print(
        format_table(
            [
                "template (#expr)",
                "traditional compliant",
                "compliant optimizer",
                "trad avg [ms]",
                "compliant avg [ms]",
            ],
            rows,
            title="Ad-hoc workload: compliance rates and optimization times",
        )
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 40)
