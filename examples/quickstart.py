"""Quickstart: compliant geo-distributed query processing in ~60 lines.

Builds a tiny geo-distributed TPC-H deployment (five locations, Table 2
of the paper), registers dataflow policies, and optimizes + executes one
query with both the compliance-based optimizer and the traditional
baseline.

Run:  python examples/quickstart.py
"""

from repro.execution import ExecutionEngine
from repro.optimizer import CompliantOptimizer, TraditionalOptimizer, check_compliance
from repro.plan import explain_physical
from repro.policy import PolicyEvaluator
from repro.tpch import build_benchmark, curated_policies, default_network


def main() -> None:
    # 1. A geo-distributed database: TPC-H over five locations, with
    #    generated data loaded (tiny scale for a fast demo).
    catalog, database = build_benchmark(scale=0.005)
    network = default_network()

    # 2. Dataflow policies, declared as SQL-like policy expressions (§4).
    policies = curated_policies(catalog, "CR")
    print("Registered dataflow policies:")
    for expression in policies.expressions:
        print("  ", expression)

    # 3. A query touching three locations.
    sql = """
        SELECT c.c_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
        FROM customer c, orders o, lineitem l
        WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
          AND l.l_shipdate > DATE '1995-03-15'
        GROUP BY c.c_name
        ORDER BY revenue DESC LIMIT 5
    """

    # 4. Optimize with the compliance-based optimizer (§6)...
    optimizer = CompliantOptimizer(catalog, policies, network)
    result = optimizer.optimize(sql)
    print("\nCompliant plan "
          f"(phase 1: {result.phase1_seconds * 1e3:.1f} ms, "
          f"phase 2: {result.phase2_seconds * 1e3:.1f} ms):")
    print(explain_physical(result.plan))

    # ... and with the policy-unaware baseline.
    baseline = TraditionalOptimizer(catalog, network).optimize(sql)
    evaluator = PolicyEvaluator(policies)
    violations = check_compliance(baseline.plan, evaluator)
    print(f"\nTraditional plan compliant? {not violations}")
    for violation in violations:
        print("  violation:", violation)

    # 5. Execute the compliant plan (the engine re-verifies compliance).
    engine = ExecutionEngine(database, network, policy_guard=evaluator)
    output = engine.execute(result.plan)
    print(f"\nTop customers by revenue ({output.row_count} rows):")
    for row in output.rows:
        print("  ", row)
    print(
        f"\nShipped {output.metrics.total_rows_shipped} rows / "
        f"{output.metrics.total_bytes_shipped} bytes across borders; "
        f"simulated transfer time {output.simulated_cost:.3f} s"
    )


if __name__ == "__main__":
    main()
